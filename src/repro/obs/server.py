"""The ``watch`` HTTP server: live campaign state over stdlib HTTP.

A :class:`WatchServer` wraps a :class:`~repro.obs.rollup.TelemetryHub` and
serves three endpoints from a daemon thread:

``/``
    The single-file HTML dashboard (:mod:`repro.obs.dashboard`).
``/metrics.json``
    The current metrics payload (schema ``repro-metrics/v1``): aggregate
    snapshot, per-worker utilization, throughput history, convergence CI
    width, prefix/post-injection timing split, and ascii renderings.
``/dashboard.txt``
    The terminal rendering of the same payload (handy over ``curl``).
``/events``
    Server-sent-events tail of the telemetry stream: one ``data:`` line per
    ``repro-telemetry/v1`` event, pre-seeded with the retained tail.

Everything is stdlib (``http.server``), binds to loopback by default, and is
strictly read-only over derived state — the server can be killed at any
moment without touching the campaign. DAVOS makes "launch *and monitor* all
SBFI phases" a top-level concern; this is that, minus the Sun Grid Engine.
"""

from __future__ import annotations

import json
import queue
import threading
from http import HTTPStatus
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import ObservabilityError
from repro.obs.dashboard import render_dashboard_html, render_text_dashboard
from repro.obs.rollup import TelemetryHub

#: Seconds between SSE keep-alive comments when no events arrive; also the
#: poll granularity for noticing a closed server while a client is attached.
_SSE_KEEPALIVE_S = 1.0


class _WatchHandler(BaseHTTPRequestHandler):
    """One request; the hub and page are attached to the server object."""

    server: "_WatchHTTPServer"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a dashboard polling
    # once a second would drown the campaign's own progress output.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send_body(self, body: bytes, content_type: str,
                   status: HTTPStatus = HTTPStatus.OK) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/", "/index.html", "/dashboard"):
            self._send_body(self.server.dashboard_html.encode("utf-8"),
                            "text/html; charset=utf-8")
        elif path == "/metrics.json":
            payload = json.dumps(self.server.hub.metrics(), sort_keys=True)
            self._send_body(payload.encode("utf-8"),
                            "application/json; charset=utf-8")
        elif path == "/dashboard.txt":
            text = render_text_dashboard(self.server.hub.metrics())
            self._send_body((text + "\n").encode("utf-8"),
                            "text/plain; charset=utf-8")
        elif path == "/events":
            self._stream_events()
        else:
            self._send_body(b"not found: try /, /metrics.json, "
                            b"/dashboard.txt or /events\n",
                            "text/plain; charset=utf-8",
                            status=HTTPStatus.NOT_FOUND)

    def _stream_events(self) -> None:
        subscriber = self.server.hub.subscribe_events()
        try:
            self.send_response(HTTPStatus.OK)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-store")
            # SSE is an unbounded stream: no Content-Length, and the
            # connection closes when either side goes away.
            self.send_header("Connection", "close")
            self.end_headers()
            while not self.server.closing.is_set():
                try:
                    event = subscriber.get(timeout=_SSE_KEEPALIVE_S)
                except queue.Empty:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                data = json.dumps(event, sort_keys=True)
                self.wfile.write(f"data: {data}\n\n".encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass                        # client went away; normal
        finally:
            self.server.hub.unsubscribe_events(subscriber)


class _WatchHTTPServer(ThreadingHTTPServer):
    # Each SSE client holds a thread open for the whole campaign; daemon
    # threads let the process exit without herding them.
    daemon_threads = True

    def __init__(self, address, hub: TelemetryHub, dashboard_html: str) -> None:
        super().__init__(address, _WatchHandler)
        self.hub = hub
        self.dashboard_html = dashboard_html
        self.closing = threading.Event()


class WatchServer:
    """Serves a hub over HTTP from a background thread.

    ``port=0`` binds an ephemeral port; read :attr:`port`/:attr:`url` after
    :meth:`start`. The server is loopback-only by default — a fault-injection
    dashboard has no business on an external interface unless the operator
    says so explicitly.
    """

    def __init__(self, hub: TelemetryHub, *, host: str = "127.0.0.1",
                 port: int = 0, title: str = "repro-fi campaign") -> None:
        self.hub = hub
        self.host = host
        self.requested_port = port
        self.title = title
        self._server: Optional[_WatchHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise ObservabilityError("watch server is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "WatchServer":
        if self._server is not None:
            raise ObservabilityError("watch server is already running")
        try:
            self._server = _WatchHTTPServer(
                (self.host, self.requested_port), self.hub,
                render_dashboard_html(self.title))
        except OSError as exc:
            raise ObservabilityError(
                f"cannot bind watch server on {self.host}:"
                f"{self.requested_port}: {exc}"
            ) from None
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-watch-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.closing.set()
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "WatchServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
