"""Structured telemetry for running campaigns.

The engine emits one event per interesting moment — campaign start/end, every
completed experiment (with its prefix vs post-injection wall-time split,
worker id, and queue depth), every checkpoint flush — through a
:class:`Telemetry` bus. The bus fans each event out to in-process subscribers
(the live ``watch`` rollups) and, when a sink path is configured, appends it
to a JSON-Lines file (``events.jsonl``) next to the record store, in the
``repro-telemetry/v1`` schema below.

**Overhead contract:** a disabled bus (no sink, no subscribers) must cost one
attribute check per call site. :meth:`Telemetry.emit` early-returns before
building the event dict, and the engine additionally guards its call sites,
so a campaign with telemetry off runs the exact hot path it ran before this
module existed (``BENCH_hotpath.json`` gates this in CI).

Schema ``repro-telemetry/v1`` — one JSON object per line:

``schema``
    Always ``"repro-telemetry/v1"``.
``seq``
    Per-bus sequence number, strictly increasing from 0; a gap means lost
    events, a reset means a new campaign appended to the same file.
``ts``
    Unix timestamp (``time.time()``) when the event was emitted.
``kind``
    Event name; the engine emits the kinds in :data:`ENGINE_EVENT_KINDS`,
    but readers must tolerate unknown kinds (the schema is open).
``payload``
    Kind-specific JSON object; see :data:`REQUIRED_PAYLOAD_FIELDS` for the
    fields validation enforces per engine kind.
"""

from __future__ import annotations

import io
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ObservabilityError

#: Schema identifier stamped into every event line.
TELEMETRY_SCHEMA = "repro-telemetry/v1"

#: Event kinds the engine emits. The schema is open — plugins may emit their
#: own kinds — but these are the ones validation knows required fields for.
ENGINE_EVENT_KINDS = frozenset({
    "campaign_start",
    "experiment_complete",
    "experiment_restored",
    "checkpoint_flush",
    "campaign_end",
    "span",
    # Batched lockstep core: one event per batch formed (with its lane
    # count, for occupancy rollups) and one per lane evicted to scalar
    # replay after its injector fired mid-batch.
    "batch_formed",
    "lane_evicted",
    # Supervision layer (fault-tolerant execution):
    "worker_crash",
    "worker_respawn",
    "experiment_retry",
    "experiment_timeout",
    "spec_quarantined",
    # Watch tailer: the records file shrank under the reader (rotation or
    # truncation) and tailing restarted from offset 0.
    "file_rotated",
    # Fleet coordinator (repro-fi serve): worker registration, lease
    # lifecycle (grants, TTL expiries, steals), host loss/quarantine, and
    # idempotent result merges.
    "host_joined",
    "lease_granted",
    "lease_expired",
    "host_lost",
    "shard_stolen",
    "result_merged",
})

#: Payload fields validation requires per engine event kind.
REQUIRED_PAYLOAD_FIELDS: Dict[str, frozenset] = {
    "campaign_start": frozenset({"plan", "total", "jobs"}),
    "experiment_complete": frozenset({
        "spec", "index", "outcome", "wall_s", "completed", "queue_depth",
    }),
    "experiment_restored": frozenset({"spec", "index", "outcome"}),
    "checkpoint_flush": frozenset({"path", "records"}),
    "campaign_end": frozenset({"plan", "completed", "elapsed_s"}),
    "span": frozenset({"name", "elapsed_s"}),
    "batch_formed": frozenset({"batch_id", "lanes"}),
    "lane_evicted": frozenset({"batch_id", "spec", "index"}),
    "worker_crash": frozenset({"worker"}),
    "worker_respawn": frozenset({"worker"}),
    "experiment_retry": frozenset({"spec", "index", "attempt", "reason"}),
    "experiment_timeout": frozenset({"spec", "index", "timeout_s"}),
    "spec_quarantined": frozenset({"spec", "attempts", "reason"}),
    "file_rotated": frozenset({"path"}),
    "host_joined": frozenset({"host", "host_id"}),
    "lease_granted": frozenset({"host", "shard", "campaign", "specs"}),
    "lease_expired": frozenset({"host", "shard", "failures"}),
    "host_lost": frozenset({"host"}),
    "shard_stolen": frozenset({"shard", "from_host", "to_host"}),
    "result_merged": frozenset({"campaign", "merged", "duplicates"}),
}


@dataclass(frozen=True)
class TelemetryEvent:
    """One emitted event: sequence number, wall-clock stamp, kind, payload."""

    seq: int
    ts: float
    kind: str
    payload: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": TELEMETRY_SCHEMA,
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "payload": self.payload,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


#: In-process subscriber: called synchronously with each emitted event.
TelemetrySubscriber = Callable[[TelemetryEvent], None]


class Telemetry:
    """Event bus: fans events out to subscribers and an optional JSONL sink.

    The bus is *inactive* (every ``emit`` a cheap no-op) until it has a sink
    or at least one subscriber, so instrumented code can hold a bus
    unconditionally without paying for it. Emission is synchronous and
    single-threaded by design: the engine emits only from the parent
    process's result loop, the same place the progress callback fires, so
    events are ordered exactly like the records they describe.
    """

    def __init__(self, sink_path: "str | Path | None" = None, *,
                 clock: Callable[[], float] = time.time) -> None:
        self._clock = clock
        self._seq = 0
        self._subscribers: List[TelemetrySubscriber] = []
        self._sink: Optional[io.TextIOBase] = None
        self._sink_path: Optional[Path] = None
        if sink_path is not None:
            self._sink_path = Path(sink_path)
            self._sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = self._sink_path.open("w", encoding="utf-8")
        self._active = self._sink is not None

    @property
    def active(self) -> bool:
        """Whether emitting does anything; instrumentation may guard on this."""
        return self._active

    @property
    def sink_path(self) -> Optional[Path]:
        return self._sink_path

    def subscribe(self, subscriber: TelemetrySubscriber) -> None:
        self._subscribers.append(subscriber)
        self._active = True

    def emit(self, kind: str, **payload) -> Optional[TelemetryEvent]:
        """Emit one event; returns it, or ``None`` when the bus is inactive."""
        if not self._active:
            return None
        event = TelemetryEvent(seq=self._seq, ts=self._clock(), kind=kind,
                               payload=payload)
        self._seq += 1
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")
            self._sink.flush()
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    @contextmanager
    def span(self, name: str, **payload) -> Iterator[None]:
        """Time a block and emit a ``span`` event with its elapsed seconds.

        Inactive buses skip the clock reads too — a span inside a hot loop
        costs one attribute check when telemetry is off.
        """
        if not self._active:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.emit("span", name=name,
                      elapsed_s=time.perf_counter() - started, **payload)

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        self._active = bool(self._subscribers)

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def validate_event_dict(data: object, *,
                        context: str = "telemetry event") -> dict:
    """Validate one parsed event against ``repro-telemetry/v1``.

    Returns the dict on success; raises :class:`ObservabilityError` naming
    what is wrong otherwise. Unknown kinds pass (the schema is open); known
    engine kinds are additionally checked for their required payload fields.
    """
    if not isinstance(data, dict):
        raise ObservabilityError(f"{context}: event is not a JSON object")
    schema = data.get("schema")
    if schema != TELEMETRY_SCHEMA:
        raise ObservabilityError(
            f"{context}: schema is {schema!r}, expected {TELEMETRY_SCHEMA!r}"
        )
    for key, kinds in (("seq", int), ("ts", (int, float)), ("kind", str)):
        if key not in data:
            raise ObservabilityError(f"{context}: missing field {key!r}")
        if not isinstance(data[key], kinds) or isinstance(data[key], bool):
            raise ObservabilityError(
                f"{context}: field {key!r} has type "
                f"{type(data[key]).__name__}, expected {kinds}"
            )
    payload = data.get("payload")
    if not isinstance(payload, dict):
        raise ObservabilityError(f"{context}: payload is not a JSON object")
    required = REQUIRED_PAYLOAD_FIELDS.get(data["kind"])
    if required is not None:
        missing = sorted(required - payload.keys())
        if missing:
            raise ObservabilityError(
                f"{context}: kind {data['kind']!r} payload is missing "
                f"required field(s) {', '.join(missing)}"
            )
    return data


def validate_events_file(path: "str | Path") -> int:
    """Validate every line of an ``events.jsonl`` file; returns the count.

    Checks each line parses, validates against the schema, and that sequence
    numbers are strictly increasing within each run (a ``seq`` reset to 0 is
    allowed — it marks a new campaign appending to the same file; any other
    decrease means interleaved writers or lost events).
    """
    path = Path(path)
    if not path.exists():
        raise ObservabilityError(f"telemetry file does not exist: {path}")
    count = 0
    previous_seq: Optional[int] = None
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            context = f"{path}:{lineno}"
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{context}: malformed JSON: {exc}"
                ) from None
            validate_event_dict(data, context=context)
            seq = data["seq"]
            if previous_seq is not None and seq not in (0, previous_seq + 1):
                raise ObservabilityError(
                    f"{context}: sequence number {seq} does not follow "
                    f"{previous_seq} (expected {previous_seq + 1}, or 0 for "
                    f"a new run)"
                )
            previous_seq = seq
            count += 1
    if count == 0:
        raise ObservabilityError(f"telemetry file holds no events: {path}")
    return count
