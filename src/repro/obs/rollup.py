"""Thread-safe rollups behind the watch server.

The engine runs in one thread (or the ``watch`` tailer does) and the HTTP
server answers from others, so everything meeting in the middle lives here:
a :class:`TelemetryHub` that consumes the engine's progress seam — the
``(AggregateSnapshot, ExperimentResult)`` pairs every completed experiment
already produces — plus the telemetry event stream, and serves immutable
JSON-ready views to ``/metrics.json`` and ``/events`` under a lock.

The hub is deliberately *derived-state only*: it never touches the engine or
the records, so a crashed dashboard can never take a campaign down with it.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.analysis.figures import ascii_bar_chart, ascii_sparkline
from repro.analysis.stats import proportion_confidence_interval
from repro.core.outcomes import Outcome

#: Schema of the ``/metrics.json`` payload.
METRICS_SCHEMA = "repro-metrics/v1"

#: How many recent telemetry events each SSE client can lag behind before
#: the hub drops events for it (slow consumers must not block the campaign).
_SSE_QUEUE_CAPACITY = 256

#: Ring-buffer length of the throughput history (one point per completion).
_THROUGHPUT_POINTS = 600


class TelemetryHub:
    """Aggregates live campaign state for the watch endpoints.

    Feed it from the engine's progress callback (:meth:`on_progress`) and —
    for the raw event tail — subscribe :meth:`on_event` to the
    :class:`~repro.obs.telemetry.Telemetry` bus. Both are cheap (dict
    updates under a lock); the expensive rendering happens in
    :meth:`metrics` on the reader's thread.
    """

    def __init__(self, *, convergence_outcome: Outcome = Outcome.CORRECT) -> None:
        self._lock = threading.Lock()
        self._campaign: Dict[str, object] = {}
        self._snapshot: Optional[dict] = None
        self._state = "waiting"
        self._started = time.time()
        self._updated: Optional[float] = None
        self._workers: Dict[str, Dict[str, float]] = {}
        self._throughput: Deque[Tuple[float, float]] = deque(
            maxlen=_THROUGHPUT_POINTS)
        self._prefix_wall_total = 0.0
        self._suffix_wall_total = 0.0
        self._timed_experiments = 0
        self._convergence_outcome = convergence_outcome
        self._convergence_seen = 0
        self._convergence_hits = 0
        #: Supervision counters, fed by the fault-tolerance events.
        self._fault_tolerance: Dict[str, int] = {
            "worker_crashes": 0,
            "worker_respawns": 0,
            "retries": 0,
            "timeouts": 0,
            "quarantined": 0,
        }
        #: Batched-lockstep counters, fed by batch_formed / lane_evicted.
        self._batching: Dict[str, int] = {
            "batches": 0,
            "lanes": 0,
            "lane_evictions": 0,
        }
        #: Fleet counters, fed by the coordinator's repro-fleet events.
        self._fleet: Dict[str, int] = {
            "hosts_joined": 0,
            "hosts_lost": 0,
            "leases_granted": 0,
            "leases_expired": 0,
            "shards_stolen": 0,
            "records_merged": 0,
            "duplicates": 0,
        }
        #: campaign id → {merged, total}, from result_merged payloads.
        self._fleet_campaigns: Dict[str, Dict[str, int]] = {}
        self._events: Deque[dict] = deque(maxlen=_SSE_QUEUE_CAPACITY)
        self._subscribers: List["queue.Queue[dict]"] = []

    # -- feeding (campaign thread) ------------------------------------------------------

    def set_campaign(self, name: str, total: int, **meta) -> None:
        with self._lock:
            self._campaign = {"name": name, "total": total, **meta}
            self._state = "running"
            self._started = time.time()

    def on_progress(self, snapshot, result) -> None:
        """Engine progress seam: one call per completed experiment."""
        with self._lock:
            self._snapshot = snapshot.to_dict()
            self._updated = time.time()
            self._state = "running"
            self._throughput.append((snapshot.elapsed, snapshot.throughput))
            worker = str(result.worker_id if result.worker_id is not None
                         else "restored")
            stats = self._workers.setdefault(
                worker, {"completed": 0, "busy_s": 0.0, "prefix_s": 0.0})
            stats["completed"] += 1
            stats["busy_s"] += result.wall_time
            if result.prefix_wall_time is not None:
                stats["prefix_s"] += result.prefix_wall_time
                self._prefix_wall_total += result.prefix_wall_time
                self._suffix_wall_total += max(
                    0.0, result.wall_time - result.prefix_wall_time)
                self._timed_experiments += 1
            self._convergence_seen += 1
            if result.outcome is self._convergence_outcome:
                self._convergence_hits += 1

    #: kind → fault-tolerance counter it increments.
    _FAULT_COUNTERS = {
        "worker_crash": "worker_crashes",
        "worker_respawn": "worker_respawns",
        "experiment_retry": "retries",
        "experiment_timeout": "timeouts",
        "spec_quarantined": "quarantined",
    }

    #: fleet kind → fleet counter it increments.
    _FLEET_COUNTERS = {
        "host_joined": "hosts_joined",
        "host_lost": "hosts_lost",
        "lease_granted": "leases_granted",
        "lease_expired": "leases_expired",
        "shard_stolen": "shards_stolen",
    }

    def _on_fleet_event_locked(self, kind: str, payload: dict) -> None:
        """Fold one coordinator event into the fleet rollup (lock held)."""
        counter = self._FLEET_COUNTERS.get(kind)
        if counter is not None:
            self._fleet[counter] += 1
        if kind != "result_merged":
            return
        def count(key):
            value = payload.get(key)
            return (value if isinstance(value, int)
                    and not isinstance(value, bool) else 0)
        self._fleet["records_merged"] += count("merged")
        self._fleet["duplicates"] += count("duplicates")
        campaign = payload.get("campaign")
        if isinstance(campaign, str):
            self._fleet_campaigns[campaign] = {
                "merged": count("campaign_merged"),
                "total": count("campaign_total"),
            }

    def on_event(self, event) -> None:
        """Telemetry-bus subscriber: retains and fans out the event tail."""
        payload = event.to_dict()
        kind = payload.get("kind")
        counter = self._FAULT_COUNTERS.get(kind)
        with self._lock:
            if counter is not None:
                self._fault_tolerance[counter] += 1
            self._on_fleet_event_locked(kind, payload.get("payload") or {})
            if kind == "batch_formed":
                self._batching["batches"] += 1
                lanes = payload.get("payload", {}).get("lanes")
                if isinstance(lanes, int) and not isinstance(lanes, bool):
                    self._batching["lanes"] += lanes
            elif kind == "lane_evicted":
                self._batching["lane_evictions"] += 1
            self._events.append(payload)
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber.put_nowait(payload)
            except queue.Full:
                # A stalled SSE client loses events rather than applying
                # backpressure to the campaign.
                pass

    def mark_done(self) -> None:
        with self._lock:
            self._state = "done"

    # -- serving (HTTP threads) ---------------------------------------------------------

    def subscribe_events(self) -> "queue.Queue[dict]":
        """Register an SSE client; returns its event queue (pre-seeded with
        the retained tail so a late-joining dashboard sees history)."""
        subscriber: "queue.Queue[dict]" = queue.Queue(
            maxsize=_SSE_QUEUE_CAPACITY)
        with self._lock:
            for payload in self._events:
                try:
                    subscriber.put_nowait(payload)
                except queue.Full:
                    break
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe_events(self, subscriber: "queue.Queue[dict]") -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def _convergence_view(self) -> dict:
        n = self._convergence_seen
        fraction = self._convergence_hits / n if n else 0.0
        low, high = (proportion_confidence_interval(self._convergence_hits, n)
                     if n else (0.0, 0.0))
        return {
            "outcome": self._convergence_outcome.value,
            "n": n,
            "fraction": fraction,
            "ci_low": low,
            "ci_high": high,
            "ci_width": high - low,
        }

    def metrics(self) -> dict:
        """The ``/metrics.json`` payload: snapshot + rollups + ascii charts."""
        with self._lock:
            snapshot = dict(self._snapshot) if self._snapshot else None
            campaign = dict(self._campaign)
            state = self._state
            updated = self._updated
            workers = {name: dict(stats)
                       for name, stats in self._workers.items()}
            throughput = list(self._throughput)
            convergence = self._convergence_view()
            prefix_total = self._prefix_wall_total
            suffix_total = self._suffix_wall_total
            timed = self._timed_experiments
            fault_tolerance = dict(self._fault_tolerance)
            batching = dict(self._batching)
            fleet = dict(self._fleet)
            fleet_campaigns = {campaign: dict(progress) for campaign, progress
                               in self._fleet_campaigns.items()}
        payload: dict = {
            "schema": METRICS_SCHEMA,
            "ts": time.time(),
            "state": state,
            "campaign": campaign,
            "snapshot": snapshot,
            "updated_ts": updated,
            "workers": [
                {"worker": name, **stats}
                for name, stats in sorted(workers.items())
            ],
            "throughput": {
                "current_per_s": throughput[-1][1] if throughput else 0.0,
                "series": [
                    {"elapsed_s": elapsed, "per_s": value}
                    for elapsed, value in throughput
                ],
            },
            "convergence": convergence,
            "timing": {
                "prefix_wall_s_total": prefix_total,
                "post_injection_wall_s_total": suffix_total,
                "timed_experiments": timed,
            },
            "fault_tolerance": fault_tolerance,
            "batching": {
                **batching,
                # Mean lanes per formed batch — the occupancy figure the
                # watch dashboard displays (0.0 until a batch forms).
                "mean_occupancy": (batching["lanes"] / batching["batches"]
                                   if batching["batches"] else 0.0),
            },
            "fleet": {
                **fleet,
                "active": bool(fleet["hosts_joined"] or fleet_campaigns),
                "campaigns": [
                    {"campaign": campaign, **progress}
                    for campaign, progress in sorted(fleet_campaigns.items())
                ],
            },
        }
        outcome_counts = (snapshot or {}).get("outcome_counts") or {}
        completed = (snapshot or {}).get("completed") or 0
        # Same fixed display order as the HTML dashboard, so the two views
        # of one campaign read identically.
        from repro.obs.dashboard import OUTCOME_ORDER

        def rank(item):
            name = item[0]
            position = (OUTCOME_ORDER.index(name)
                        if name in OUTCOME_ORDER else len(OUTCOME_ORDER))
            return (position, name)

        fractions = {
            outcome: count / completed
            for outcome, count in sorted(outcome_counts.items(), key=rank)
        } if completed else {}
        payload["ascii"] = {
            "outcome_bars": ascii_bar_chart(fractions,
                                            title="outcome distribution"),
            "throughput_sparkline": ascii_sparkline(
                [value for _, value in throughput], width=60),
        }
        return payload
