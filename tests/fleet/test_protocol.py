"""The ``repro-fleet/v1`` wire protocol: version gate, errors, transport.

A fleet mixes long-lived processes on different machines, so the protocol's
job is to fail *loudly and typed*: version mismatches and malformed bodies
are :class:`FleetProtocolError` (retrying cannot help), coordinator
rejections are :class:`FleetError`, and only transport failures are
:class:`FleetUnavailableError` — the one class workers retry through.
"""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.errors import (
    FleetError,
    FleetProtocolError,
    FleetUnavailableError,
)
from repro.fleet.coordinator import FleetCoordinator, FleetServer
from repro.fleet.protocol import (
    FLEET_SCHEMA,
    FleetClient,
    envelope,
    require_fields,
    validate_message,
)


class TestMessages:
    def test_envelope_stamps_the_schema(self):
        message = envelope(host="a", pid=1)
        assert message["schema"] == FLEET_SCHEMA
        assert validate_message(message) is message

    def test_non_object_messages_are_rejected(self):
        with pytest.raises(FleetProtocolError, match="not a JSON object"):
            validate_message(["not", "a", "dict"])

    def test_version_mismatch_is_rejected_by_name(self):
        with pytest.raises(FleetProtocolError, match="repro-fleet/v1"):
            validate_message({"schema": "repro-fleet/v0"})

    def test_require_fields_names_what_is_missing(self):
        with pytest.raises(FleetProtocolError, match="host_id"):
            require_fields(envelope(), ["host_id"], context="test")


@pytest.fixture()
def server(tmp_path):
    coordinator = FleetCoordinator(tmp_path / "state")
    with FleetServer(coordinator) as running:
        yield running


def post_raw(url, payload):
    """POST arbitrary JSON, bypassing the client's own version stamping."""
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    return urllib.request.urlopen(request, timeout=5)


class TestWire:
    def test_status_round_trips_the_schema(self, server):
        status = FleetClient(server.url).status()
        assert status["schema"] == FLEET_SCHEMA
        assert status["state"] == "idle"

    def test_wrong_version_gets_a_400_with_a_fleet_body(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_raw(f"{server.url}/fleet/join",
                     {"schema": "repro-fleet/v0", "host": "x", "pid": 1})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["schema"] == FLEET_SCHEMA
        assert "repro-fleet/v1" in body["error"]

    def test_malformed_body_gets_a_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/fleet/join", data=b"this is not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_unknown_endpoint_surfaces_the_coordinator_words(self, server):
        client = FleetClient(server.url)
        with pytest.raises(FleetError, match="unknown endpoint"):
            client._request("POST", "/fleet/nonsense", {})

    def test_join_heartbeat_round_trip(self, server):
        client = FleetClient(server.url)
        joined = client.join(host="unit", pid=4242)
        assert joined["host_id"].startswith("h")
        assert joined["lease_ttl_s"] > 0
        beat = client.heartbeat(host_id=joined["host_id"], leases={})
        assert beat["ok"] is True and beat["rejoin"] is False

    def test_unknown_host_heartbeat_asks_for_rejoin(self, server):
        client = FleetClient(server.url)
        beat = client.heartbeat(host_id="h9999",
                                leases={"l000001": {"completed": 0}})
        assert beat["ok"] is False and beat["rejoin"] is True
        assert beat["revoked"] == ["l000001"]

    def test_records_for_unknown_campaign_is_a_404(self, server):
        with pytest.raises(FleetError, match="404|unknown campaign"):
            FleetClient(server.url).records("c999-nope")


class TestTransport:
    def test_unreachable_coordinator_is_the_retryable_class(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = FleetClient(f"http://127.0.0.1:{port}", timeout_s=0.5)
        with pytest.raises(FleetUnavailableError):
            client.status()
        with pytest.raises(FleetUnavailableError):
            client.records("c001-any")
        # The retryable class is still a FleetError, so coarse handlers work.
        assert issubclass(FleetUnavailableError, FleetError)
