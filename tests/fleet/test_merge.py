"""Cross-host record merge: identity dedup, hard conflicts, the CLI.

The fleet's at-least-once delivery is only safe because duplicates collapse
by spec identity *and* payload disagreements are hard errors: deterministic
re-execution means a true duplicate is byte-identical, so anything else is
mixed code versions or configs and must never merge silently.
"""

from dataclasses import replace

import pytest

from repro.cli import main
from repro.core.campaign import Campaign
from repro.core.plan import paper_figure3_plan
from repro.core.recording import ExperimentRecord, RecordStore
from repro.errors import MergeConflictError
from repro.fleet.merge import canonical_json, merge_stores, record_key


@pytest.fixture(scope="module")
def records():
    plan = paper_figure3_plan(num_tests=6, duration=1.0)
    result = Campaign(plan).run()
    return [ExperimentRecord.from_result(item) for item in result.results]


def write_store(path, records):
    RecordStore(path).replace_all(records)
    return path


class TestKeys:
    def test_stamped_records_key_on_the_identity(self, records):
        stamped = replace(records[0],
                          extras={**records[0].extras, "spec_id": "abc123"})
        assert record_key(stamped) == "id:abc123"

    def test_unstamped_records_fall_back_to_the_triple(self, records):
        record = records[0]
        assert record_key(record) == (
            f"triple:{record.spec_name}|{record.seed}|{record.scenario}")

    def test_canonical_json_ignores_formatting_not_payload(self, records):
        record = records[0]
        assert canonical_json(record) == canonical_json(replace(record))
        assert canonical_json(record) != canonical_json(
            replace(record, duration=record.duration + 1.0))


class TestMerge:
    def test_single_store_merge_is_the_identity(self, tmp_path, records):
        source = write_store(tmp_path / "a.jsonl", records)
        output = tmp_path / "out.jsonl"
        stats = merge_stores([source], output)
        assert output.read_bytes() == source.read_bytes()
        assert (stats.read, stats.written, stats.duplicates) == (6, 6, 0)

    def test_overlap_dedups_in_first_appearance_order(self, tmp_path,
                                                      records):
        a = write_store(tmp_path / "a.jsonl", records[:4])
        b = write_store(tmp_path / "b.jsonl", records[2:])
        output = tmp_path / "out.jsonl"
        stats = merge_stores([a, b], output)
        merged = list(RecordStore(output).iter_records())
        assert [r.spec_name for r in merged] == [r.spec_name for r in records]
        assert stats.duplicates == 2
        assert stats.per_input == [(str(a), 4), (str(b), 4)]

    def test_payload_conflict_is_a_hard_error(self, tmp_path, records):
        tampered = records[:3]
        tampered[1] = replace(tampered[1],
                              duration=tampered[1].duration + 1.0)
        a = write_store(tmp_path / "a.jsonl", records[:3])
        b = write_store(tmp_path / "b.jsonl", tampered)
        output = tmp_path / "out.jsonl"
        with pytest.raises(MergeConflictError, match="disagree"):
            merge_stores([a, b], output)
        # The atomic write never landed and its temp file was cleaned up.
        assert not output.exists()
        assert not output.with_name(output.name + ".tmp").exists()


class TestCli:
    def test_merge_command_end_to_end(self, tmp_path, records, capsys):
        a = write_store(tmp_path / "a.jsonl", records[:4])
        b = write_store(tmp_path / "b.jsonl", records[2:])
        output = tmp_path / "out.jsonl"
        assert main(["merge", str(a), str(b), "-o", str(output)]) == 0
        out = capsys.readouterr().out
        assert "6 unique" in out and "2 duplicate(s)" in out
        assert len(list(RecordStore(output).iter_records())) == 6

    def test_missing_input_fails_before_writing(self, tmp_path, records,
                                                capsys):
        a = write_store(tmp_path / "a.jsonl", records[:2])
        output = tmp_path / "out.jsonl"
        code = main(["merge", str(a), str(tmp_path / "nope.jsonl"),
                     "-o", str(output)])
        assert code == 1
        assert "does not exist" in capsys.readouterr().err
        assert not output.exists()

    def test_conflict_exits_nonzero(self, tmp_path, records, capsys):
        a = write_store(tmp_path / "a.jsonl", records[:2])
        b = write_store(
            tmp_path / "b.jsonl",
            [replace(records[0], duration=records[0].duration + 1.0)])
        code = main(["merge", str(a), str(b),
                     "-o", str(tmp_path / "out.jsonl")])
        assert code == 1
        assert "disagree" in capsys.readouterr().err
