"""Lease-table rules: grants, TTL expiry, backoff, stealing, quarantine.

The table is pure (clock injected, no I/O), so every fleet-robustness rule
is exercised here without sleeping: a lease that is not renewed expires and
its shard requeues with exponential backoff; a host that repeatedly loses
the same shard is quarantined by *name* (rejoining under a fresh id does
not launder it); an idle host steals a zero-progress lease past the steal
age, but never a working holder's and never its own.
"""

import pytest

from repro.engine.scheduler import PlanShard
from repro.fleet.lease import DONE, LEASED, PENDING, LeaseTable


def shard(shard_id, *spec_ids):
    return PlanShard(shard_id=shard_id, spec_ids=tuple(spec_ids),
                     spec_names=tuple(f"spec-{s}" for s in spec_ids))


def make_table(**overrides):
    options = {"lease_ttl_s": 10.0, "backoff_s": 1.0,
               "host_failure_limit": 2}
    options.update(overrides)
    return LeaseTable(**options)


def joined(table, name="alpha", now=0.0):
    return table.join(host=name, pid=100, now=now)


class TestGrant:
    def test_pending_shards_grant_in_submission_order(self):
        table = make_table()
        table.add_shards("c1", [shard("s1", "a"), shard("s2", "b")])
        h1 = joined(table, "alpha")
        h2 = joined(table, "beta")
        lease1, stolen1, state1 = table.grant(h1.host_id, now=0.0)
        lease2, stolen2, state2 = table.grant(h2.host_id, now=0.0)
        assert (state1, state2) == ("leased", "leased")
        assert (stolen1, stolen2) == (None, None)
        assert lease1.shard_id == "s1" and lease2.shard_id == "s2"
        assert table.shard("s1").state == LEASED

    def test_everything_leased_means_wait_not_done(self):
        table = make_table()
        table.add_shards("c1", [shard("s1", "a")])
        h1 = joined(table, "alpha")
        h2 = joined(table, "beta")
        table.grant(h1.host_id, now=0.0)
        lease, _, state = table.grant(h2.host_id, now=0.0)
        assert lease is None and state == "wait"

    def test_all_done_reports_done(self):
        table = make_table()
        table.add_shards("c1", [shard("s1", "a")])
        h1 = joined(table)
        table.grant(h1.host_id, now=0.0)
        table.complete("s1", host_id=h1.host_id)
        lease, _, state = table.grant(h1.host_id, now=1.0)
        assert lease is None and state == "done"
        assert table.all_done() and table.campaign_done("c1")

    def test_empty_table_means_wait_not_done(self):
        # Workers routinely join before the first campaign is submitted: an
        # empty table is idle, and a vacuous "done" would send --until-done
        # agents home while the fleet is still forming.
        table = make_table()
        h1 = joined(table)
        lease, _, state = table.grant(h1.host_id, now=0.0)
        assert lease is None and state == "wait"
        assert not table.all_done()

    def test_unknown_host_gets_nothing(self):
        table = make_table()
        table.add_shards("c1", [shard("s1", "a")])
        lease, _, state = table.grant("h9999", now=0.0)
        assert lease is None and state == "wait"


class TestExpiry:
    def test_unrenewed_lease_expires_and_requeues(self):
        table = make_table(lease_ttl_s=10.0)
        table.add_shards("c1", [shard("s1", "a")])
        h1 = joined(table)
        lease, _, _ = table.grant(h1.host_id, now=0.0)
        assert table.expire(now=9.9) == []
        expired = table.expire(now=10.0)
        assert [item.lease_id for item in expired] == [lease.lease_id]
        entry = table.shard("s1")
        assert entry.state == PENDING and entry.failures == 1

    def test_renewal_postpones_expiry(self):
        table = make_table(lease_ttl_s=10.0)
        table.add_shards("c1", [shard("s1", "a")])
        h1 = joined(table)
        lease, _, _ = table.grant(h1.host_id, now=0.0)
        table.renew(h1.host_id, {lease.lease_id: {"completed": 0}}, now=9.0)
        assert table.expire(now=10.0) == []
        assert table.expire(now=19.0) != []

    def test_backoff_doubles_per_failure_and_caps(self):
        table = make_table(lease_ttl_s=1.0, backoff_s=2.0, backoff_cap_s=5.0,
                           host_failure_limit=99)
        table.add_shards("c1", [shard("s1", "a")])
        h1 = joined(table)
        table.grant(h1.host_id, now=0.0)
        table.expire(now=1.0)
        assert table.shard("s1").next_offer_ts == pytest.approx(3.0)  # 1 + 2
        # Not offerable during backoff; offerable once it elapses.
        lease, _, state = table.grant(h1.host_id, now=2.0)
        assert lease is None and state == "wait"
        lease, _, _ = table.grant(h1.host_id, now=3.0)
        assert lease is not None
        table.expire(now=4.0)
        assert table.shard("s1").next_offer_ts == pytest.approx(8.0)  # 4 + 4
        lease, _, _ = table.grant(h1.host_id, now=8.0)
        assert lease is not None
        table.expire(now=9.0)
        assert table.shard("s1").next_offer_ts == pytest.approx(14.0)  # capped

    def test_expired_lease_is_reported_revoked_once(self):
        table = make_table(lease_ttl_s=1.0)
        table.add_shards("c1", [shard("s1", "a")])
        h1 = joined(table)
        lease, _, _ = table.grant(h1.host_id, now=0.0)
        table.expire(now=1.0)
        revoked = table.renew(h1.host_id,
                              {lease.lease_id: {"completed": 0}}, now=2.0)
        assert revoked == [lease.lease_id]


class TestSteal:
    def make_stuck(self, steal_after_s=10.0):
        table = make_table(lease_ttl_s=100.0, steal_after_s=steal_after_s)
        table.add_shards("c1", [shard("s1", "a")])
        holder = joined(table, "holder")
        thief = joined(table, "thief")
        lease, _, _ = table.grant(holder.host_id, now=0.0)
        return table, holder, thief, lease

    def test_idle_host_steals_stuck_zero_progress_lease(self):
        table, holder, thief, lease = self.make_stuck()
        stolen, stolen_from, state = table.grant(thief.host_id, now=10.0)
        assert state == "leased" and stolen.shard_id == "s1"
        assert stolen_from == "holder"
        # The old holder learns via its next heartbeat.
        assert table.renew(holder.host_id,
                           {lease.lease_id: {"completed": 1}},
                           now=10.0) == [lease.lease_id]

    def test_working_holder_keeps_its_shard(self):
        table, holder, thief, lease = self.make_stuck()
        table.renew(holder.host_id, {lease.lease_id: {"completed": 1}},
                    now=5.0)
        stolen, _, state = table.grant(thief.host_id, now=20.0)
        assert stolen is None and state == "wait"

    def test_no_steal_before_steal_age(self):
        table, holder, thief, lease = self.make_stuck(steal_after_s=10.0)
        stolen, _, state = table.grant(thief.host_id, now=9.0)
        assert stolen is None and state == "wait"

    def test_host_never_steals_its_own_lease(self):
        table, holder, thief, lease = self.make_stuck()
        stolen, _, state = table.grant(holder.host_id, now=50.0)
        assert stolen is None and state == "wait"


class TestQuarantine:
    def lose_shard(self, table, host, times, start=0.0):
        now = start
        for _ in range(times):
            lease, _, state = table.grant(host.host_id, now=now)
            assert state == "leased"
            now = lease.expires_ts
            table.expire(now=now)
            # Skip past the requeue backoff for the next grant.
            now = max(now, table.shard(lease.shard_id).next_offer_ts)
        return now

    def test_repeated_loss_of_same_shard_quarantines_the_host(self):
        table = make_table(lease_ttl_s=1.0, host_failure_limit=2)
        table.add_shards("c1", [shard("s1", "a")])
        flaky = joined(table, "flaky")
        self.lose_shard(table, flaky, times=2)
        assert flaky.quarantined
        assert [info.host for info in table.quarantined_hosts()] == ["flaky"]
        lease, _, state = table.grant(flaky.host_id, now=100.0)
        assert lease is None and state == "wait"

    def test_quarantine_keys_on_host_name_across_rejoins(self):
        table = make_table(lease_ttl_s=1.0, host_failure_limit=2)
        table.add_shards("c1", [shard("s1", "a")])
        flaky = joined(table, "flaky")
        self.lose_shard(table, flaky, times=2)
        reborn = table.join(host="flaky", pid=200, now=50.0)
        assert reborn.quarantined
        innocent = table.join(host="innocent", pid=300, now=50.0)
        assert not innocent.quarantined
        lease, _, state = table.grant(innocent.host_id, now=100.0)
        assert lease is not None and state == "leased"

    def test_one_loss_then_completion_clears_the_failure_history(self):
        table = make_table(lease_ttl_s=1.0, host_failure_limit=2)
        table.add_shards("c1", [shard("s1", "a")])
        slow = joined(table, "slow")
        now = self.lose_shard(table, slow, times=1)
        table.grant(slow.host_id, now=now)
        table.complete("s1", host_id=slow.host_id)
        assert slow.shard_failures == {}
        assert not slow.quarantined


class TestComplete:
    def test_complete_marks_done_and_returns_the_holding_lease(self):
        table = make_table()
        table.add_shards("c1", [shard("s1", "a", "b")])
        h1 = joined(table)
        lease, _, _ = table.grant(h1.host_id, now=0.0)
        returned = table.complete("s1", host_id=h1.host_id)
        assert returned is lease
        assert table.shard("s1").state == DONE
        assert table.lease_for(lease.lease_id) is None
        assert h1.shards_done == 1
        assert table.counts() == {PENDING: 0, LEASED: 0, DONE: 1}

    def test_completing_an_unknown_shard_is_a_noop(self):
        table = make_table()
        assert table.complete("nope") is None
