"""Coordinator + worker agents in-process: the fleet's end-to-end contract.

One coordinator on an ephemeral port, worker agents as threads, and the
properties the fleet promises: the merged record store is byte-identical to
a single-host run of the same campaign; submission is idempotent (dupes
collapse, conflicts refuse); a worker whose coordinator restarted is told to
rejoin rather than erroring; ``resume`` re-offers exactly the unfinished
work; and the coordinator's telemetry events validate against the engine's
own schema.
"""

import json
import threading

import pytest

from repro.core.config import catalog_config
from repro.core.recording import RecordStore
from repro.engine.runner import CampaignEngine
from repro.errors import FleetError
from repro.fleet.coordinator import FleetCoordinator, FleetServer
from repro.fleet.protocol import FleetClient
from repro.fleet.worker import FleetWorkerAgent
from repro.obs.telemetry import Telemetry, validate_events_file

TESTS = 6
DURATION = 1.0


def config():
    return catalog_config("fig3", num_tests=TESTS, duration=DURATION)


@pytest.fixture(scope="module")
def serial_checkpoint(tmp_path_factory):
    """The single-host ground truth: same campaign, engine checkpoint."""
    path = tmp_path_factory.mktemp("serial") / "records.jsonl"
    cfg = config()
    CampaignEngine(cfg.compile(), jobs=1, sut_factory=cfg.sut_factory(),
                   classifier=cfg.build_classifier(),
                   checkpoint_path=str(path), resume=True).run()
    return path


def run_workers(url, *names, **options):
    options.setdefault("poll_s", 0.05)
    agents = [FleetWorkerAgent(url, host=name, **options) for name in names]
    threads = [threading.Thread(target=agent.run, daemon=True)
               for agent in agents]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "worker agent did not finish"
    return agents


class TestEndToEnd:
    def test_two_workers_produce_the_serial_byte_stream(
            self, tmp_path, serial_checkpoint):
        events = tmp_path / "events.jsonl"
        with Telemetry(events) as telemetry:
            coordinator = FleetCoordinator(tmp_path / "state", shard_size=2,
                                           telemetry=telemetry)
            with FleetServer(coordinator) as server:
                client = FleetClient(server.url)
                campaign_id = client.submit_campaign(
                    config=config().to_dict())["campaign_id"]
                agents = run_workers(server.url, "w1", "w2")
                status = client.status()
                records = client.records(campaign_id)
            assert coordinator.all_done()

        merged_path = tmp_path / "state" / f"{campaign_id}.records.jsonl"
        assert merged_path.read_bytes() == serial_checkpoint.read_bytes()

        # The HTTP records view is the same plan-order stream.
        serial = list(RecordStore(serial_checkpoint).iter_records())
        assert [r["spec_name"] for r in records] == [
            r.spec_name for r in serial]

        assert status["state"] == "done"
        (campaign,) = status["campaigns"]
        assert campaign["merged"] == campaign["total"] == TESTS
        assert campaign["shards"] == {"pending": 0, "leased": 0, "done": 3}
        assert sum(agent.stats["merged"] for agent in agents) == TESTS
        # Both workers actually participated (shard_size=2 over 6 specs).
        assert all(agent.stats["shards"] >= 1 for agent in agents)

        # The coordinator's telemetry validates against the engine schema
        # and covers the fleet lifecycle.
        assert validate_events_file(events) > 0
        kinds = {json.loads(line)["kind"]
                 for line in events.read_text().splitlines()}
        assert {"host_joined", "lease_granted", "result_merged"} <= kinds


class TestIdempotentSubmit:
    def submit_message(self, coordinator, serial_checkpoint):
        campaign_id = coordinator.submit(config())
        host_id = coordinator.handle_join(
            {"host": "unit", "pid": 1})["host_id"]
        lease = coordinator.handle_lease({"host_id": host_id})["lease"]
        by_identity = {
            record.spec_id: json.loads(record.to_json())
            for record in RecordStore(serial_checkpoint).iter_records()
        }
        return {
            "host_id": host_id,
            "lease_id": lease["lease_id"],
            "shard_id": lease["shard_id"],
            "campaign_id": campaign_id,
            "records": [by_identity[identity]
                        for identity in lease["spec_ids"]],
        }

    def test_resubmission_collapses_to_duplicates(self, tmp_path,
                                                  serial_checkpoint):
        coordinator = FleetCoordinator(tmp_path / "state", shard_size=2)
        message = self.submit_message(coordinator, serial_checkpoint)
        first = coordinator.handle_submit(message)
        assert (first["merged"], first["duplicates"]) == (2, 0)
        again = coordinator.handle_submit(message)
        assert (again["merged"], again["duplicates"]) == (0, 2)
        entry = coordinator.campaigns[message["campaign_id"]]
        assert len(entry.merged) == 2

    def test_conflicting_payload_is_refused_and_ours_kept(
            self, tmp_path, serial_checkpoint):
        coordinator = FleetCoordinator(tmp_path / "state", shard_size=2)
        message = self.submit_message(coordinator, serial_checkpoint)
        coordinator.handle_submit(message)
        tampered = dict(message)
        tampered["records"] = [dict(record) for record in message["records"]]
        tampered["records"][0]["duration"] += 1.0
        with pytest.raises(FleetError, match="conflict"):
            coordinator.handle_submit(tampered)
        entry = coordinator.campaigns[message["campaign_id"]]
        kept = entry.checkpoint.record_by_identity(
            message["records"][0]["extras"]["spec_id"])
        assert kept.duration == message["records"][0]["duration"]

    def test_unstamped_records_are_rejected(self, tmp_path,
                                            serial_checkpoint):
        coordinator = FleetCoordinator(tmp_path / "state", shard_size=2)
        message = self.submit_message(coordinator, serial_checkpoint)
        stripped = [dict(record) for record in message["records"]]
        for record in stripped:
            record["extras"] = {}
        message["records"] = stripped
        from repro.errors import FleetProtocolError
        with pytest.raises(FleetProtocolError, match="spec identity"):
            coordinator.handle_submit(message)


class TestRejoin:
    def test_unknown_host_is_told_to_rejoin_not_errored(self, tmp_path):
        coordinator = FleetCoordinator(tmp_path / "state", shard_size=2)
        coordinator.submit(config())
        response = coordinator.handle_lease({"host_id": "h9999"})
        assert response["lease"] is None
        assert response["state"] == "rejoin"
        beat = coordinator.handle_heartbeat(
            {"host_id": "h9999", "leases": {"l000001": {"completed": 1}}})
        assert beat["rejoin"] is True and beat["revoked"] == ["l000001"]


class TestResume:
    def test_resume_without_state_is_a_hard_error(self, tmp_path):
        coordinator = FleetCoordinator(tmp_path / "state")
        with pytest.raises(FleetError, match="cannot resume"):
            coordinator.resume()

    def test_resume_reoffers_only_unfinished_work(self, tmp_path,
                                                  serial_checkpoint):
        state_dir = tmp_path / "state"
        first = FleetCoordinator(state_dir, shard_size=2)
        with FleetServer(first) as server:
            campaign_id = first.submit(config())
            run_workers(server.url, "partial", max_shards=1,
                        until_done=False)
        done_before = len(first.campaigns[campaign_id].merged)
        assert done_before == 2

        second = FleetCoordinator(state_dir, shard_size=2)
        assert second.resume() == 1
        entry = second.campaigns[campaign_id]
        assert len(entry.merged) == done_before
        # Only the unfinished specs were re-sharded.
        remaining = sum(len(item.shard)
                        for item in second.table.shards())
        assert remaining == TESTS - done_before

        with FleetServer(second) as server:
            run_workers(server.url, "finisher")
        assert second.all_done()
        merged_path = state_dir / f"{campaign_id}.records.jsonl"
        assert merged_path.read_bytes() == serial_checkpoint.read_bytes()
