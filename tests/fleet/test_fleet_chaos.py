"""Fleet chaos: SIGKILL real worker and coordinator processes mid-campaign.

The fleet's whole reason to exist is surviving exactly this violence:

* a worker killed while holding a lease — its TTL lapses, the shard
  requeues, the survivors finish, and the merged store is byte-identical to
  a single-host run (killing a machine costs time, never records);
* the coordinator killed mid-merge — ``serve --resume`` reloads the
  journaled campaigns and atomic checkpoints, re-offers only the unfinished
  shards, and the still-running workers retry through the outage, rejoin,
  and finish with exactly one record per spec.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.core.recording import RecordStore

CONFIG_TOML = """\
[campaign]
name = "fleet-chaos"
tests = 16
base_seed = 0
duration = 60.0
intensity = "medium"
scenario = "steady-state"

[[target]]
kind = "nonroot-trap"
"""

TESTS = 16


def fleet_env():
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def spawn(args, env):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args], env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def fetch_status(port):
    url = f"http://127.0.0.1:{port}/fleet/status"
    with urllib.request.urlopen(url, timeout=5) as response:
        return json.loads(response.read().decode("utf-8"))


def poll_status(port, predicate, deadline_s, what):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            status = fetch_status(port)
        except OSError:
            time.sleep(0.05)
            continue
        if predicate(status):
            return status
        time.sleep(0.02)
    pytest.fail(f"fleet never reached: {what}")


def reap(processes):
    for process in processes:
        if process.poll() is None:
            process.kill()
        process.wait()


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """The config file plus the single-host ground-truth checkpoint."""
    root = tmp_path_factory.mktemp("chaos")
    config = root / "campaign.toml"
    config.write_text(CONFIG_TOML)
    serial = root / "serial.jsonl"
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "run", str(config),
         "--resume", str(serial)],
        env=fleet_env(), capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    return config, serial


def serve_args(config, state_dir, port, resume=False):
    args = ["serve", "--host", "127.0.0.1", "--port", str(port),
            "--state-dir", str(state_dir), "--shard-size", "2",
            "--lease-ttl", "2", "--heartbeat-interval", "0.5",
            "--until-done", "--linger", "0.5"]
    if resume:
        args.append("--resume")
    else:
        args.extend(["--config", str(config)])
    return args


def worker_args(port, name):
    return ["fleet-worker", f"http://127.0.0.1:{port}", "--name", name,
            "--until-done", "--poll", "0.2", "--offline-grace", "60"]


def assert_matches_serial(records_path, serial):
    assert records_path.read_bytes() == serial.read_bytes()
    records = list(RecordStore(records_path).iter_records())
    assert len(records) == TESTS
    identities = [record.spec_id for record in records]
    assert len(set(identities)) == TESTS        # exactly one per spec


class TestWorkerDeath:
    def test_sigkilled_worker_forfeits_nothing(self, tmp_path, campaign):
        config, serial = campaign
        port = free_port()
        state_dir = tmp_path / "state"
        env = fleet_env()
        coordinator = spawn(serve_args(config, state_dir, port), env)
        workers = {}
        try:
            poll_status(port, lambda s: True, 30, "coordinator up")
            for name in ("w-victim", "w-a", "w-b"):
                workers[name] = spawn(worker_args(port, name), env)

            # Kill the victim the moment it holds a lease (mid-shard).
            poll_status(
                port,
                lambda s: any(lease["host"] == "w-victim"
                              for lease in s["leases"]),
                60, "a lease granted to the victim worker")
            workers["w-victim"].kill()
            workers["w-victim"].wait()

            assert coordinator.wait(timeout=180) == 0
            for name in ("w-a", "w-b"):
                assert workers[name].wait(timeout=60) == 0
        finally:
            reap([coordinator, *workers.values()])

        records_path = state_dir / "c001-fleet-chaos.records.jsonl"
        assert_matches_serial(records_path, serial)


class TestCoordinatorDeath:
    def test_sigkilled_coordinator_resumes_without_duplicates(
            self, tmp_path, campaign):
        config, serial = campaign
        port = free_port()
        state_dir = tmp_path / "state"
        env = fleet_env()
        first = spawn(serve_args(config, state_dir, port), env)
        workers = {}
        second = None
        try:
            poll_status(port, lambda s: True, 30, "coordinator up")
            for name in ("w-a", "w-b"):
                workers[name] = spawn(worker_args(port, name), env)

            # Let real merges land, then kill the coordinator cold.
            status = poll_status(
                port,
                lambda s: (s["campaigns"]
                           and 2 <= s["campaigns"][0]["merged"] < TESTS),
                120, "a partial merge before the kill")
            merged_before = status["campaigns"][0]["merged"]
            first.send_signal(signal.SIGKILL)
            first.wait()

            # The journaled state survived the kill, atomically.
            state = json.loads((state_dir / "state.json").read_text())
            assert state["schema"] == "repro-fleet-state/v1"
            assert state["campaigns"][0]["campaign_id"] == "c001-fleet-chaos"

            # Same port, --resume: workers retry through the outage and
            # rejoin; only unfinished shards are re-offered.
            second = spawn(serve_args(config, state_dir, port, resume=True),
                           env)
            status = poll_status(port, lambda s: bool(s["campaigns"]),
                                 60, "resumed coordinator up")
            assert status["campaigns"][0]["merged"] >= merged_before

            assert second.wait(timeout=180) == 0
            for name in ("w-a", "w-b"):
                assert workers[name].wait(timeout=60) == 0
        finally:
            reap([process for process in
                  (first, second, *workers.values()) if process is not None])

        records_path = state_dir / "c001-fleet-chaos.records.jsonl"
        assert_matches_serial(records_path, serial)
