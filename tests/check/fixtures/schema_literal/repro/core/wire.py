"""Fixture: the defining constant for the wire-format tag."""

WIRE_SCHEMA = "repro-fixture/v1"


def make_header() -> dict:
    return {"schema": WIRE_SCHEMA}
