"""Known-bad fixture: an inline duplicate of a defined wire-format tag."""


def accepts(header: dict) -> bool:
    return header.get("schema") == "repro-fixture/v1"


def excused(header: dict) -> bool:
    return header.get("schema") == "repro-other/v9"  # repro: allow[schema-literal] -- fixture: foreign schema quoted in a rejection test
