"""Known-bad fixture: ambient entropy and set iteration in scoped code."""

import random
import time


def stamp() -> float:
    return time.time()


def jitter() -> float:
    return random.random()


def excused_stamp() -> float:
    return time.time()  # repro: allow[determinism] -- fixture: sidecar timestamp, never recorded


def seeded(seed: int) -> float:
    return random.Random(seed).random()


class Pool:
    def __init__(self) -> None:
        self._members = set()

    def ordered(self) -> list:
        return [name for name in self._members]

    def listed(self) -> list:
        return list(self._members)

    def walk(self) -> None:
        for name in {"a", "b"}:
            print(name)
