"""Known-bad fixture: guarded state mutated outside its lock."""

import threading


class Hub:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {}
        self._last = None

    def on_event(self, key) -> None:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
            self._last = key

    def racy(self, key) -> None:
        self._counts[key] = 0

    def unlocked_call(self) -> None:
        self._reset_locked()

    def safe_call(self) -> None:
        with self._lock:
            self._reset_locked()

    def _reset_locked(self) -> None:
        self._counts.clear()
        self._last = None

    def excused(self, key) -> None:
        self._counts.pop(key, None)  # repro: allow[lock-discipline] -- fixture: single-threaded teardown path
