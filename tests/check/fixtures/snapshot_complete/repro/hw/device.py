"""Known-bad fixture: missing snapshot coverage plus an aliased container."""


class Device:
    def __init__(self) -> None:
        self._events = []
        self._mode = "idle"
        # repro: allow[snapshot-complete] -- fixture: derived cache, rebuilt lazily on first read
        self._cache = {}

    def record(self, event) -> None:
        self._events.append(event)

    def set_mode(self, mode) -> None:
        self._mode = mode
        self._cache.clear()

    def snapshot_state(self) -> dict:
        return {"events": self._events}

    def restore_state(self, state) -> None:
        self._events = list(state["events"])


class CleanDevice:
    def __init__(self) -> None:
        self._events = []
        self._mode = "idle"

    def record(self, event) -> None:
        self._events.append(event)

    def set_mode(self, mode) -> None:
        self._mode = mode

    def snapshot_state(self) -> dict:
        return {"events": list(self._events), "mode": self._mode}

    def restore_state(self, state) -> None:
        self._events = list(state["events"])
        self._mode = state["mode"]
