"""Known-bad fixture: every way a checker comment can be malformed."""

MISSING_REASON = 1  # repro: allow[determinism]
MALFORMED = 2  # repro: allowing stuff
UNKNOWN_RULE = 3  # repro: allow[no-such-rule] -- reason given
NO_RULES = 4  # repro: allow[] -- names no rules
