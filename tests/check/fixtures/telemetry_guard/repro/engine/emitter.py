"""Known-bad fixture: an emit site not dominated by a bus-active check."""


class Engine:
    def __init__(self, telemetry) -> None:
        self.telemetry = telemetry

    def unguarded(self) -> None:
        self.telemetry.emit("step", count=1)

    def guarded(self) -> None:
        if self.telemetry:
            self.telemetry.emit("step", count=1)

    def early_out(self) -> None:
        if not self.telemetry:
            return
        self.telemetry.emit("step", count=1)

    def excused(self) -> None:
        self.telemetry.emit("step", count=1)  # repro: allow[telemetry-guard] -- fixture: caller checks the bus
