"""Fixture registries, mirroring the real core/registry.py shape."""


class Registry:
    def register(self, key, *aliases):
        def decorate(obj):
            return obj
        return decorate

    def add_value(self, key, value, aliases=()):
        return value

    def build(self, key):
        raise KeyError(key)


TARGETS = Registry()
SCENARIOS = Registry()


@TARGETS.register("trap", "trap-alias")
def build_trap():
    return object()


SCENARIOS.add_value("steady-state", object(), aliases=("steady",))
