"""Known-bad fixture: literal part keys with no matching registration."""

from repro.core.registry import TARGETS


def build_good():
    return TARGETS.build("trap-alias")


def build_bad():
    return TARGETS.build("trp")


def build_excused():
    return TARGETS.build("future-target")  # repro: allow[registry-resolve] -- fixture: registered by a plugin at runtime


def bad_ref():
    return PartRef("trapp")


def PartRef(key):
    return key
