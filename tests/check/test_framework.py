"""Framework behaviour: suppressions, baselines, rendering, rule selection."""

import json
from pathlib import Path

import pytest

from repro.check import (BASELINE_SCHEMA, CHECK_SCHEMA, Finding, Project,
                         available_rules, load_baseline, render_text,
                         run_check, to_payload, write_baseline)
from repro.check.source import SourceFile
from repro.errors import CheckError

FIXTURES = Path(__file__).parent / "fixtures"


def parse(tmp_path, text):
    path = tmp_path / "mod.py"
    path.write_text(text)
    return SourceFile(path, "repro/mod.py", text)


class TestSuppressionParsing:
    def test_inline_applies_to_its_own_line(self, tmp_path):
        source = parse(tmp_path,
                       "x = 1  # repro: allow[determinism] -- why not\n")
        assert source.suppression_for(1, "determinism") is not None
        assert source.suppression_for(2, "determinism") is None

    def test_standalone_applies_to_the_next_line(self, tmp_path):
        source = parse(tmp_path,
                       "# repro: allow[determinism] -- why not\nx = 1\n")
        assert source.suppression_for(2, "determinism") is not None
        assert source.suppression_for(1, "determinism") is None

    def test_one_comment_may_name_several_rules(self, tmp_path):
        source = parse(
            tmp_path,
            "x = 1  # repro: allow[determinism, lock-discipline] -- shared\n")
        assert source.suppression_for(1, "determinism") is not None
        assert source.suppression_for(1, "lock-discipline") is not None
        assert source.suppression_for(1, "schema-literal") is None

    def test_missing_reason_is_a_problem_not_a_suppression(self, tmp_path):
        source = parse(tmp_path, "x = 1  # repro: allow[determinism]\n")
        assert not source.suppressions
        assert len(source.problems) == 1
        assert "missing its reason" in source.problems[0].message

    def test_unrelated_comments_are_ignored(self, tmp_path):
        source = parse(tmp_path, "x = 1  # plain old comment\n")
        assert not source.suppressions and not source.problems


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [Finding("determinism", "repro/a.py", 3, "msg")]
        path = tmp_path / "baseline.json"
        assert write_baseline(path, findings) == 1
        data = json.loads(path.read_text())
        assert data["schema"] == BASELINE_SCHEMA
        fingerprints = load_baseline(path)
        assert fingerprints == {"determinism::repro/a.py::msg"}

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{\"schema\": \"something-else/v1\"}")
        with pytest.raises(CheckError):
            load_baseline(path)

    def test_fingerprint_survives_line_drift(self):
        before = Finding("determinism", "repro/a.py", 3, "msg")
        after = Finding("determinism", "repro/a.py", 40, "msg")
        assert before.fingerprint == after.fingerprint

    def test_baselined_findings_do_not_fail_the_run(self):
        project = Project.load(root=FIXTURES / "schema_literal")
        first = run_check(project, ["schema-literal"])
        assert not first.ok
        baseline = {finding.fingerprint for finding in first.active}
        again = run_check(project, ["schema-literal"], baseline=baseline)
        assert again.ok
        assert len(again.baselined) == len(first.active)


class TestRunner:
    def test_unknown_rule_raises_check_error(self):
        project = Project.load(root=FIXTURES / "schema_literal")
        with pytest.raises(CheckError, match="unknown rule"):
            run_check(project, ["no-such-rule"])

    def test_available_rules_lists_all_seven(self):
        rules = available_rules()
        assert sorted(rules) == [
            "determinism", "lock-discipline", "registry-resolve",
            "schema-literal", "snapshot-complete", "suppression-syntax",
            "telemetry-guard"]
        assert all(rules.values())

    def test_missing_source_root_raises(self, tmp_path):
        with pytest.raises(CheckError, match="not a directory"):
            Project.load(src_root=tmp_path / "nowhere")

    def test_render_text_names_file_line_and_rule(self):
        project = Project.load(root=FIXTURES / "schema_literal")
        result = run_check(project, ["schema-literal"])
        text = render_text(result)
        assert "repro/engine/reader.py:5: [schema-literal] error:" in text
        assert "1 finding(s)" in text

    def test_render_text_verbose_lists_suppressed(self):
        project = Project.load(root=FIXTURES / "schema_literal")
        result = run_check(project, ["schema-literal"])
        assert "suppressed (" not in render_text(result)
        assert "suppressed (" in render_text(result, verbose=True)

    def test_payload_shape(self):
        project = Project.load(root=FIXTURES / "schema_literal")
        result = run_check(project, ["schema-literal"])
        payload = to_payload(result)
        assert payload["schema"] == CHECK_SCHEMA
        assert payload["rules"] == ["schema-literal"]
        assert payload["counts"]["active"] == 1
        assert payload["counts"]["suppressed"] == 1
        assert payload["ok"] is False
        assert all({"rule", "file", "line", "message"} <= set(entry)
                   for entry in payload["findings"])
