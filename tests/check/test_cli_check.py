"""The ``repro-fi check`` subcommand: exit codes, formats, baselines."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_check_on_the_repo_exits_zero(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_findings_exit_nonzero(capsys):
    root = str(FIXTURES / "schema_literal")
    assert main(["check", "--root", root]) == 1
    out = capsys.readouterr().out
    assert "[schema-literal]" in out


def test_rule_selection(capsys):
    root = str(FIXTURES / "determinism")
    # The only fixture violations are determinism ones; selecting a
    # different rule must report a clean tree.
    assert main(["check", "--root", root, "--rule", "lock-discipline"]) == 0
    assert main(["check", "--root", root, "--rule", "determinism"]) == 1


def test_unknown_rule_is_a_usage_error(capsys):
    assert main(["check", "--rule", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_json_format_is_the_payload(capsys):
    root = str(FIXTURES / "telemetry_guard")
    assert main(["check", "--root", root, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-check/v1"
    assert payload["ok"] is False
    assert payload["counts"]["active"] == 1


def test_write_baseline_then_check_passes(tmp_path, capsys):
    root = str(FIXTURES / "lock_discipline")
    baseline = str(tmp_path / "baseline.json")
    assert main(["check", "--root", root, "--baseline", baseline]) == 1
    assert main(["check", "--root", root, "--baseline", baseline,
                 "--write-baseline"]) == 0
    assert main(["check", "--root", root, "--baseline", baseline]) == 0
    out = capsys.readouterr().out
    assert "2 baselined" in out


def test_verbose_lists_excused_findings(capsys):
    root = str(FIXTURES / "telemetry_guard")
    main(["check", "--root", root, "--verbose"])
    assert "suppressed (fixture: caller checks the bus)" in (
        capsys.readouterr().out)
