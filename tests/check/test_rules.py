"""Each rule fires on its known-bad fixture and suppressions silence it.

Every fixture tree under ``fixtures/<rule>/`` is a miniature project root
laid out like the repo (``repro/<package>/...``). Each contains at least
one true positive, one clean counterpart, and one violation excused by an
inline suppression — so these tests pin down both that the rule *fires*
and that the ``allow`` comment is honoured.
"""

from pathlib import Path

from repro.check import Project, run_check

FIXTURES = Path(__file__).parent / "fixtures"


def check_fixture(name, rules):
    project = Project.load(root=FIXTURES / name)
    return run_check(project, rules)


def active_lines(result, rule):
    return sorted((finding.file, finding.line)
                  for finding in result.active if finding.rule == rule)


class TestDeterminism:
    def test_fires_on_entropy_and_set_iteration(self):
        result = check_fixture("determinism", ["determinism"])
        messages = [finding.message for finding in result.active]
        assert len(messages) == 5
        assert any("time.time" in message for message in messages)
        assert any("random.random" in message for message in messages)
        assert any("comprehension" in message for message in messages)
        assert any("list() over the unordered set" in message
                   for message in messages)
        assert any("for-loop iterates" in message for message in messages)

    def test_seeded_random_is_allowed(self):
        result = check_fixture("determinism", ["determinism"])
        # random.Random(seed).random() in seeded() (line 20) is sanctioned.
        assert ("repro/hw/bad_clock.py", 20) not in active_lines(
            result, "determinism")

    def test_suppression_silences(self):
        result = check_fixture("determinism", ["determinism"])
        suppressed = [finding for finding in result.suppressed
                      if finding.rule == "determinism"]
        assert len(suppressed) == 1
        assert "sidecar timestamp" in suppressed[0].suppression_reason
        assert not result.ok  # the unsuppressed findings still count


class TestSnapshotComplete:
    def test_fires_on_missing_and_aliased_attributes(self):
        result = check_fixture("snapshot_complete", ["snapshot-complete"])
        messages = [finding.message for finding in result.active]
        assert len(messages) == 2
        assert any("Device._mode is mutated by set_mode()" in message
                   for message in messages)
        assert any("Device._events is aliased into the snapshot" in message
                   for message in messages)

    def test_clean_class_passes(self):
        result = check_fixture("snapshot_complete", ["snapshot-complete"])
        assert not any("CleanDevice" in finding.message
                       for finding in result.findings)

    def test_suppression_silences(self):
        result = check_fixture("snapshot_complete", ["snapshot-complete"])
        suppressed = [finding for finding in result.suppressed
                      if finding.rule == "snapshot-complete"]
        assert len(suppressed) == 1
        assert "_cache" in suppressed[0].message


class TestTelemetryGuard:
    def test_fires_on_the_unguarded_emit_only(self):
        result = check_fixture("telemetry_guard", ["telemetry-guard"])
        assert active_lines(result, "telemetry-guard") == [
            ("repro/engine/emitter.py", 9)]

    def test_suppression_silences(self):
        result = check_fixture("telemetry_guard", ["telemetry-guard"])
        assert len(result.suppressed) == 1
        assert result.suppressed[0].line == 21


class TestLockDiscipline:
    def test_fires_on_unlocked_mutation_and_unlocked_helper_call(self):
        result = check_fixture("lock_discipline", ["lock-discipline"])
        messages = [finding.message for finding in result.active]
        assert len(messages) == 2
        assert any("Hub.racy mutates guarded attribute '_counts'" in message
                   for message in messages)
        assert any("Hub.unlocked_call calls self._reset_locked() without"
                   in message for message in messages)

    def test_locked_helper_and_with_block_pass(self):
        result = check_fixture("lock_discipline", ["lock-discipline"])
        for finding in result.active:
            assert "safe_call" not in finding.message
            assert "on_event" not in finding.message

    def test_suppression_silences(self):
        result = check_fixture("lock_discipline", ["lock-discipline"])
        suppressed = [finding for finding in result.suppressed
                      if finding.rule == "lock-discipline"]
        assert len(suppressed) == 1
        assert "excused" in suppressed[0].message


class TestSchemaLiteral:
    def test_fires_on_the_inline_duplicate(self):
        result = check_fixture("schema_literal", ["schema-literal"])
        assert len(result.active) == 1
        finding = result.active[0]
        assert finding.file == "repro/engine/reader.py"
        assert "inline duplicate of 'repro-fixture/v1'" in finding.message
        assert "WIRE_SCHEMA" in finding.message

    def test_defining_constant_not_flagged(self):
        result = check_fixture("schema_literal", ["schema-literal"])
        assert not any(finding.file == "repro/core/wire.py"
                       for finding in result.findings)

    def test_suppression_silences_the_undefined_tag(self):
        result = check_fixture("schema_literal", ["schema-literal"])
        suppressed = [finding for finding in result.suppressed
                      if finding.rule == "schema-literal"]
        assert len(suppressed) == 1
        assert "repro-other/v9" in suppressed[0].message


class TestRegistryResolve:
    def test_fires_on_unknown_keys_with_hints(self):
        result = check_fixture("registry_resolve", ["registry-resolve"])
        messages = [finding.message for finding in result.active]
        assert len(messages) == 3
        assert any("unknown target key 'trp'" in message
                   and "did you mean 'trap'" in message
                   for message in messages)
        assert any("unknown part key 'trapp' in a PartRef" in message
                   for message in messages)
        assert any("unknown scenario key 'steady-stat'" in message
                   and "steady-state" in message
                   for message in messages)

    def test_aliases_resolve(self):
        result = check_fixture("registry_resolve", ["registry-resolve"])
        assert not any("trap-alias" in finding.message
                       for finding in result.active)

    def test_example_config_kind_resolves(self):
        result = check_fixture("registry_resolve", ["registry-resolve"])
        toml_findings = [finding for finding in result.active
                         if finding.file.endswith("bad.toml")]
        assert len(toml_findings) == 1
        assert "[campaign] scenario" in toml_findings[0].message

    def test_suppression_silences(self):
        result = check_fixture("registry_resolve", ["registry-resolve"])
        suppressed = [finding for finding in result.suppressed
                      if finding.rule == "registry-resolve"]
        assert len(suppressed) == 1
        assert "future-target" in suppressed[0].message


class TestSuppressionSyntax:
    def test_every_malformed_comment_shape_is_reported(self):
        result = check_fixture("suppression_syntax", ["suppression-syntax"])
        messages = [finding.message for finding in result.active
                    if finding.rule == "suppression-syntax"]
        assert len(messages) == 4
        assert any("missing its reason" in message for message in messages)
        assert any("malformed checker comment" in message
                   for message in messages)
        assert any("unknown rule(s) ['no-such-rule']" in message
                   for message in messages)
        assert any("names no rules" in message for message in messages)

    def test_suppression_syntax_findings_cannot_be_baselined(self):
        project = Project.load(root=FIXTURES / "suppression_syntax")
        first = run_check(project, ["suppression-syntax"])
        baseline = {finding.fingerprint for finding in first.active}
        again = run_check(project, ["suppression-syntax"], baseline=baseline)
        assert not again.ok
        assert len(again.active) == 4
