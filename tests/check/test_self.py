"""The repo passes its own contract checker.

This is the gate the CI ``check`` job enforces: every finding in the tree
is either fixed or carries an inline suppression with a reason. If this
test fails, either fix the flagged code or (for a justified exception)
add a ``-- reason`` suppression where the finding points.
"""

from pathlib import Path

from repro.check import Project, load_baseline, render_text, run_check

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_is_clean_under_all_rules():
    project = Project.load(root=REPO_ROOT)
    baseline = load_baseline(REPO_ROOT / "check_baseline.json")
    result = run_check(project, baseline=baseline)
    assert result.ok, "\n" + render_text(result)
    # The whole tree is in scope, not a stale subset.
    assert result.files_checked > 50
    assert len(result.rule_names) == 6


def test_every_repo_suppression_carries_a_reason():
    project = Project.load(root=REPO_ROOT)
    result = run_check(project)
    for finding in result.suppressed:
        assert finding.suppression_reason, finding


def test_committed_baseline_is_empty():
    # The tree is currently clean; the baseline exists only as the escape
    # hatch for future refactors. Ratcheting down is fine, growing is not.
    assert load_baseline(REPO_ROOT / "check_baseline.json") == set()
