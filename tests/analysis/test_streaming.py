"""Tests for the streaming-analysis subsystem and the record-layer fixes.

Covers the four PR-5 bugfixes (silent seooc path skips are tested in
``tests/core/test_cli_frontend.py``, the other three here), streaming-vs-load
parity on every catalog campaign, byte-identical ``analyze --format text``
vs. ``report`` output, the JSON export round-trip, and ``compare`` with two
and three campaigns.
"""

import inspect
import json
from pathlib import Path

import pytest

from repro.analysis.streaming import (
    GroupedStreamingAnalyzer,
    OutcomeTally,
    StreamingAnalyzer,
    StreamingConvergence,
    analyze_records,
    compare_to_dict,
    default_checkpoints,
    outcome_deltas,
)
from repro.cli import main
from repro.core.analysis import (
    availability_breakdown,
    convergence_curve,
    group_by,
    management_summary,
    mean_injections_per_test,
    outcome_distribution,
    register_class_totals,
)
from repro.core.config import catalog_config, catalog_keys
from repro.core.outcomes import Outcome
from repro.core.recording import (
    RECORD_SCHEMA_VERSION,
    ExperimentRecord,
    RecordStore,
)
from repro.engine import CampaignEngine, LiveAggregator
from repro.engine.checkpoint import Checkpoint
from repro.errors import AnalysisError, RecordSchemaError


def make_record(outcome="correct", *, seed=0, target="trap",
                intensity="medium", scenario="steady-state",
                fault_model="single-bit-flip", injections=3,
                register_class_counts=None, create_attempted=False,
                create_succeeded=False):
    return ExperimentRecord(
        spec_name=f"test-{seed}",
        outcome=outcome,
        rationale="synthetic",
        injections=injections,
        duration=10.0,
        seed=seed,
        scenario=scenario,
        target=target,
        fault_model=fault_model,
        intensity=intensity,
        register_class_counts=register_class_counts or {},
        create_attempted=create_attempted,
        create_succeeded=create_succeeded,
    )


MIXED_RECORDS = [
    make_record("correct", seed=0, target="trap",
                register_class_counts={"gp": 2}),
    make_record("panic_park", seed=1, target="trap", injections=5,
                register_class_counts={"gp": 1, "special": 1}),
    make_record("cpu_park", seed=2, target="hvc"),
    make_record("correct", seed=3, target="hvc", injections=0),
    make_record("invalid_arguments", seed=4, target="hvc",
                create_attempted=True, create_succeeded=False),
    make_record("inconsistent_state", seed=5, target="irqchip",
                create_attempted=True, create_succeeded=True),
    make_record("silent_failure", seed=6, target="irqchip"),
]


def write_store(path, records):
    store = RecordStore(path)
    store.write_all(records)
    return store


class TestRecordStoreStreaming:
    def test_iter_is_a_generator_not_a_loaded_list(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl", MIXED_RECORDS)
        assert inspect.isgenerator(iter(store))
        assert inspect.isgenerator(store.iter_records())

    def test_iteration_is_lazy(self, tmp_path):
        """A malformed line late in the file must not break earlier records."""
        path = tmp_path / "r.jsonl"
        write_store(path, MIXED_RECORDS[:2])
        with path.open("a", encoding="utf-8") as handle:
            handle.write("this is not json\n")
        iterator = RecordStore(path).iter_records()
        assert next(iterator).seed == 0
        assert next(iterator).seed == 1
        with pytest.raises(AnalysisError) as excinfo:
            next(iterator)
        # Strict mode names the file and the 1-based line number.
        assert str(path) in str(excinfo.value)
        assert ":3:" in str(excinfo.value)

    def test_skip_policy_drops_malformed_lines(self, tmp_path):
        path = tmp_path / "r.jsonl"
        write_store(path, MIXED_RECORDS[:1])
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{broken\n")
            handle.write(MIXED_RECORDS[1].to_json() + "\n")
        seeds = [record.seed
                 for record in RecordStore(path).iter_records(errors="skip")]
        assert seeds == [0, 1]

    def test_unknown_policy_is_rejected_eagerly(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl", MIXED_RECORDS)
        with pytest.raises(AnalysisError, match="strict"):
            store.iter_records(errors="lenient")

    def test_load_equals_iteration(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl", MIXED_RECORDS)
        assert store.load() == list(store.iter_records()) == list(store)

    def test_count_ignores_blank_lines_and_missing_files(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = write_store(path, MIXED_RECORDS)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert store.count() == len(MIXED_RECORDS)
        assert RecordStore(tmp_path / "absent.jsonl").count() == 0
        assert list(RecordStore(tmp_path / "absent.jsonl")) == []


class TestSchemaVersion:
    def test_newer_schema_version_is_rejected(self):
        payload = json.loads(MIXED_RECORDS[0].to_json())
        payload["schema_version"] = RECORD_SCHEMA_VERSION + 1
        with pytest.raises(AnalysisError, match="schema_version"):
            ExperimentRecord.from_json(json.dumps(payload))

    def test_current_older_and_absent_versions_are_accepted(self):
        payload = json.loads(MIXED_RECORDS[0].to_json())
        for version in (RECORD_SCHEMA_VERSION, 0):
            payload["schema_version"] = version
            assert ExperimentRecord.from_json(json.dumps(payload)).seed == 0
        payload.pop("schema_version")
        assert ExperimentRecord.from_json(json.dumps(payload)).seed == 0

    def test_non_integer_schema_version_is_rejected(self):
        payload = json.loads(MIXED_RECORDS[0].to_json())
        for bogus in ("2", 1.5, True):
            payload["schema_version"] = bogus
            with pytest.raises(AnalysisError, match="integer"):
                ExperimentRecord.from_json(json.dumps(payload))

    def test_newer_schema_fails_the_stream_with_the_line_number(self, tmp_path):
        path = tmp_path / "v2.jsonl"
        payload = json.loads(MIXED_RECORDS[0].to_json())
        payload["schema_version"] = RECORD_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(RecordSchemaError, match=":1:"):
            list(RecordStore(path).iter_records())

    def test_newer_schema_is_not_skippable(self, tmp_path):
        """--skip-malformed salvages corruption; a version mismatch means
        the whole store needs newer tooling and must still raise."""
        path = tmp_path / "v2.jsonl"
        payload = json.loads(MIXED_RECORDS[0].to_json())
        payload["schema_version"] = RECORD_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(RecordSchemaError):
            list(RecordStore(path).iter_records(errors="skip"))

    def test_checkpoint_does_not_discard_a_newer_schema_tail(self, tmp_path):
        """Checkpoint.load() drops a torn final line (crash mid-append),
        but a well-formed newer-schema record is data, not a torn write:
        resume must refuse instead of silently rewriting it away."""
        path = tmp_path / "ck.jsonl"
        newer = json.loads(MIXED_RECORDS[1].to_json())
        newer["schema_version"] = RECORD_SCHEMA_VERSION + 1
        path.write_text(MIXED_RECORDS[0].to_json() + "\n"
                        + json.dumps(newer) + "\n")
        before = path.read_text()
        with pytest.raises(RecordSchemaError):
            Checkpoint(path).load()
        assert path.read_text() == before, "checkpoint file must be untouched"

    def test_checkpoint_still_recovers_from_a_torn_tail(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text(MIXED_RECORDS[0].to_json() + "\n"
                        + MIXED_RECORDS[1].to_json()[:25] + "\n")
        checkpoint = Checkpoint(path)
        assert checkpoint.load() == 1
        assert path.read_text() == MIXED_RECORDS[0].to_json() + "\n"


class TestGroupByValidation:
    def test_empty_input_still_rejects_bogus_keys(self):
        with pytest.raises(AnalysisError, match="bogus"):
            group_by([], "bogus")

    def test_method_names_are_not_fields(self):
        with pytest.raises(AnalysisError, match="to_json"):
            group_by(MIXED_RECORDS, "to_json")

    def test_valid_keys_group_iterators(self):
        groups = group_by(iter(MIXED_RECORDS), "target")
        assert set(groups) == {"trap", "hvc", "irqchip"}
        assert sum(len(records) for records in groups.values()) == len(MIXED_RECORDS)

    def test_grouped_streaming_analyzer_rejects_bogus_keys_up_front(self):
        with pytest.raises(AnalysisError, match="nope"):
            GroupedStreamingAnalyzer("nope")


class TestStreamingParityOnSynthetic:
    def test_distribution_availability_management_registers(self):
        analyzer = StreamingAnalyzer().extend(iter(MIXED_RECORDS))
        assert analyzer.total == len(MIXED_RECORDS)
        assert analyzer.distribution() == outcome_distribution(MIXED_RECORDS)
        assert analyzer.availability() == availability_breakdown(MIXED_RECORDS)
        assert analyzer.management_summary() == management_summary(MIXED_RECORDS)
        assert analyzer.register_class_totals() == register_class_totals(MIXED_RECORDS)
        assert analyzer.mean_injections() == pytest.approx(
            mean_injections_per_test(MIXED_RECORDS))

    def test_grouped_streaming_matches_batch_grouping(self):
        grouped = GroupedStreamingAnalyzer("target").extend(iter(MIXED_RECORDS))
        batch = group_by(MIXED_RECORDS, "target")
        assert grouped.distributions() == {
            key: outcome_distribution(records) for key, records in batch.items()
        }

    @pytest.mark.parametrize("checkpoints", [
        [2, 5, 100],
        [100, 2, 5],          # unsorted
        [3, 3, 7],            # duplicates
        [1000],               # entirely past the end
    ])
    def test_streaming_convergence_matches_batch_curve(self, checkpoints):
        convergence = StreamingConvergence(Outcome.CORRECT, checkpoints)
        for record in MIXED_RECORDS:
            convergence.add(record)
        assert convergence.curve() == convergence_curve(
            MIXED_RECORDS, Outcome.CORRECT, checkpoints)

    def test_default_checkpoints_are_a_1_2_5_ladder(self):
        assert default_checkpoints(1000) == [10, 20, 50, 100, 200, 500, 1000]

    def test_live_aggregator_counts_through_the_same_tally(self):
        results = [record.to_result() for record in MIXED_RECORDS]
        aggregator = LiveAggregator(total=len(results))
        for result in results:
            aggregator.update(result)
        analyzer = StreamingAnalyzer().extend(MIXED_RECORDS)
        assert aggregator.outcome_counts == analyzer.tally.outcome_counts
        assert aggregator.completed == analyzer.total
        assert aggregator.failures == analyzer.tally.failures
        assert aggregator.injections == analyzer.tally.injections

    def test_outcome_tally_empty_summaries(self):
        tally = OutcomeTally()
        assert tally.distribution().total == 0
        assert tally.availability() == {
            "correct": 0.0, "panic_park": 0.0, "cpu_park": 0.0, "other": 0.0}
        assert tally.mean_injections() == 0.0


class TestStreamingParityOnCatalogCampaigns:
    @pytest.mark.parametrize("key", catalog_keys())
    def test_streaming_summaries_match_full_load(self, key, tmp_path):
        config = catalog_config(key, num_tests=2, duration=3.0)
        plan = config.compile()
        engine = CampaignEngine(plan, sut_factory=config.sut_factory(),
                                classifier=config.build_classifier())
        result = engine.run()
        path = tmp_path / f"{key}.jsonl"
        result.save(str(path))
        store = RecordStore(path)

        loaded = store.load()
        assert loaded, f"catalog campaign {key} produced no records"
        analysis = analyze_records(store.iter_records(), group_key="target")
        assert analysis.total == len(loaded)
        assert analysis.analyzer.distribution() == outcome_distribution(loaded)
        assert analysis.analyzer.availability() == availability_breakdown(loaded)
        assert analysis.analyzer.management_summary() == management_summary(loaded)
        assert (analysis.analyzer.register_class_totals()
                == register_class_totals(loaded))
        assert analysis.grouped.distributions() == {
            group: outcome_distribution(records)
            for group, records in group_by(loaded, "target").items()
        }


class TestAnalyzeCli:
    @pytest.fixture
    def store_path(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        write_store(path, MIXED_RECORDS)
        return path

    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_text_output_is_byte_identical_to_report(self, capsys, store_path):
        code, report_out, _ = self.run_cli(capsys, "report", str(store_path))
        assert code == 0
        code, analyze_out, _ = self.run_cli(capsys, "analyze", str(store_path))
        assert code == 0
        assert analyze_out == report_out

    def test_json_round_trip(self, capsys, store_path):
        code, out, _ = self.run_cli(capsys, "analyze", str(store_path),
                                    "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["schema"] == "repro-analyze/v1"
        assert payload["total"] == len(MIXED_RECORDS)
        assert payload["source"] == str(store_path)
        counts = {value: entry["count"]
                  for value, entry in payload["outcomes"].items()}
        assert counts == {
            "correct": 2, "panic_park": 1, "cpu_park": 1,
            "invalid_arguments": 1, "inconsistent_state": 1,
            "silent_failure": 1,
            # Infrastructure verdicts (quarantined specs) are part of the
            # schema even when the campaign had none.
            "infra_timeout": 0, "infra_crash": 0,
        }
        assert sum(counts.values()) == payload["total"]
        assert payload["register_class_totals"] == {"gp": 3, "special": 1}
        assert payload["management"]["create_attempts"] == 2
        assert payload["management"]["create_rejections"] == 1
        # Re-serializing the parsed payload must reproduce the export.
        assert json.dumps(payload, indent=2, sort_keys=True) == out.rstrip("\n")

    def test_json_includes_groups_and_convergence(self, capsys, store_path):
        code, out, _ = self.run_cli(
            capsys, "analyze", str(store_path), "--format", "json",
            "--group-by", "target", "--convergence", "correct")
        assert code == 0
        payload = json.loads(out)
        assert payload["group_by"]["key"] == "target"
        assert set(payload["group_by"]["groups"]) == {"trap", "hvc", "irqchip"}
        assert payload["convergence"]["outcome"] == "correct"
        ns = [point["n"] for point in payload["convergence"]["points"]]
        assert ns == sorted(set(ns)), "clamped duplicate points must be dropped"
        assert ns[-1] == len(MIXED_RECORDS)

    @pytest.mark.parametrize("key", ["target", "intensity", "fault_model",
                                     "scenario", "seed"])
    def test_group_by_accepts_every_documented_key(self, capsys, store_path, key):
        code, out, _ = self.run_cli(capsys, "analyze", str(store_path),
                                    "--group-by", key)
        assert code == 0
        assert f"grouped by {key}" in out

    def test_group_by_rejects_non_fields(self, store_path):
        with pytest.raises(SystemExit):
            main(["analyze", str(store_path), "--group-by", "to_json"])

    def test_markdown_export(self, capsys, store_path):
        code, out, _ = self.run_cli(capsys, "analyze", str(store_path),
                                    "--format", "markdown",
                                    "--group-by", "target")
        assert code == 0
        assert "| outcome | count | share | 95% CI |" in out
        assert "## Grouped by `target`" in out

    def test_missing_file_is_an_error_naming_the_path(self, capsys, tmp_path):
        missing = tmp_path / "nope.jsonl"
        code, _, err = self.run_cli(capsys, "analyze", str(missing))
        assert code == 1
        assert str(missing) in err

    def test_malformed_line_fails_strict_and_passes_skip(self, capsys, tmp_path):
        path = tmp_path / "broken.jsonl"
        write_store(path, MIXED_RECORDS[:2])
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json\n")
        code, _, err = self.run_cli(capsys, "analyze", str(path))
        assert code == 1
        assert f"{path}:3:" in err
        code, out, err = self.run_cli(capsys, "analyze", str(path),
                                      "--skip-malformed")
        assert code == 0
        assert "experiments: 2" in out
        # The drop is never silent: the count goes to stderr ...
        assert "skipped 1 malformed record line" in err
        # ... and into the JSON export.
        code, out, _ = self.run_cli(capsys, "analyze", str(path),
                                    "--skip-malformed", "--format", "json")
        assert code == 0
        assert json.loads(out)["skipped_lines"] == 1


class TestCompareCli:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    @pytest.fixture
    def three_campaigns(self, tmp_path):
        paths = []
        for index, outcomes in enumerate([
            ["correct", "correct", "panic_park"],
            ["correct", "cpu_park", "panic_park"],
            ["panic_park", "panic_park", "panic_park"],
        ]):
            path = tmp_path / f"campaign_{index}.jsonl"
            write_store(path, [make_record(outcome, seed=seed)
                               for seed, outcome in enumerate(outcomes)])
            paths.append(path)
        return paths

    def test_compare_two_campaigns(self, capsys, three_campaigns):
        first, second, _ = three_campaigns
        code, out, _ = self.run_cli(capsys, "compare", str(first), str(second))
        assert code == 0
        assert "campaign_0" in out and "campaign_1" in out
        assert "per-outcome delta vs campaign_0" in out
        assert "paper Figure-3 reference" in out

    def test_compare_three_campaigns(self, capsys, three_campaigns):
        code, out, _ = self.run_cli(
            capsys, "compare", *[str(path) for path in three_campaigns])
        assert code == 0
        for name in ("campaign_0", "campaign_1", "campaign_2"):
            assert name in out
        # campaign_2 is all panic_park: -66.7pp correct, +66.7pp panic.
        assert "-66.7" in out and "+66.7" in out

    def test_compare_json(self, capsys, three_campaigns):
        code, out, _ = self.run_cli(
            capsys, "compare", "--format", "json",
            *[str(path) for path in three_campaigns])
        assert code == 0
        payload = json.loads(out)
        assert payload["schema"] == "repro-compare/v1"
        assert payload["baseline"] == "campaign_0"
        assert set(payload["campaigns"]) == {"campaign_0", "campaign_1",
                                             "campaign_2"}
        assert set(payload["deltas"]) == {"campaign_1", "campaign_2"}
        assert payload["deltas"]["campaign_2"]["panic_park"] == pytest.approx(2 / 3)
        assert payload["paper_figure3_reference"]["correct"] == pytest.approx(0.63)

    def test_compare_requires_two_files(self, capsys, three_campaigns):
        code, _, err = self.run_cli(capsys, "compare", str(three_campaigns[0]))
        assert code == 2
        assert "two" in err

    def test_compare_rejects_the_same_file_given_twice(
            self, capsys, three_campaigns):
        code, _, err = self.run_cli(capsys, "compare",
                                    str(three_campaigns[0]),
                                    str(three_campaigns[1]),
                                    str(three_campaigns[0]))
        assert code == 1
        assert "more than once" in err

    def test_compare_missing_file_names_it(self, capsys, three_campaigns, tmp_path):
        missing = tmp_path / "gone.jsonl"
        code, _, err = self.run_cli(capsys, "compare",
                                    str(three_campaigns[0]), str(missing))
        assert code == 1
        assert str(missing) in err

    def test_compare_deltas_helper(self):
        a = StreamingAnalyzer().extend(
            [make_record("correct"), make_record("panic_park")])
        b = StreamingAnalyzer().extend(
            [make_record("panic_park"), make_record("panic_park")])
        deltas = outcome_deltas(a.distribution(), b.distribution())
        assert deltas["correct"] == pytest.approx(-0.5)
        assert deltas["panic_park"] == pytest.approx(0.5)

    def test_compare_to_dict_requires_campaigns(self):
        with pytest.raises(AnalysisError):
            compare_to_dict({})
