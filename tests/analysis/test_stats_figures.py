"""Tests for the statistics helpers and ASCII figure rendering."""

import pytest

from repro.analysis.figures import ascii_bar_chart, ascii_pie_summary, ascii_series_table
from repro.analysis.stats import (
    proportion_confidence_interval,
    required_sample_size,
    summarize_proportion,
)
from repro.errors import AnalysisError


class TestWilsonInterval:
    def test_interval_brackets_the_point_estimate(self):
        low, high = proportion_confidence_interval(30, 100)
        assert low < 0.3 < high
        assert 0.0 <= low and high <= 1.0

    def test_zero_and_full_counts(self):
        low, high = proportion_confidence_interval(0, 50)
        assert low == 0.0 and high > 0.0
        low, high = proportion_confidence_interval(50, 50)
        assert high == 1.0 and low < 1.0

    def test_empty_sample_gives_degenerate_interval(self):
        assert proportion_confidence_interval(0, 0) == (0.0, 0.0)

    def test_interval_narrows_with_sample_size(self):
        small = proportion_confidence_interval(3, 10)
        large = proportion_confidence_interval(300, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_invalid_counts_are_rejected(self):
        with pytest.raises(AnalysisError):
            proportion_confidence_interval(-1, 10)
        with pytest.raises(AnalysisError):
            proportion_confidence_interval(11, 10)

    def test_summary_describe(self):
        summary = summarize_proportion(6, 20)
        assert summary.fraction == pytest.approx(0.3)
        assert summary.ci_width > 0
        assert "6/20" in summary.describe()
        assert summarize_proportion(0, 0).fraction == 0.0


class TestSampleSizing:
    def test_paper_sized_campaign(self):
        # Estimating a ~30% panic share within +/-5 points needs ~320 tests.
        n = required_sample_size(0.30, 0.05)
        assert 300 <= n <= 340

    def test_validation(self):
        with pytest.raises(AnalysisError):
            required_sample_size(0.0, 0.05)
        with pytest.raises(AnalysisError):
            required_sample_size(0.3, 0.0)


class TestAsciiFigures:
    def test_bar_chart_contains_labels_and_bars(self):
        chart = ascii_bar_chart({"correct": 0.65, "panic park": 0.30},
                                title="Figure 3")
        assert "Figure 3" in chart
        assert "correct" in chart and "panic park" in chart
        assert "65.0%" in chart and "30.0%" in chart
        assert "#" in chart

    def test_bar_chart_clamps_out_of_range_values(self):
        chart = ascii_bar_chart({"overflow": 1.7, "negative": -0.3})
        assert "100.0%" in chart and "  0.0%" in chart

    def test_bar_chart_empty_and_invalid_width(self):
        assert "(no data)" in ascii_bar_chart({})
        with pytest.raises(AnalysisError):
            ascii_bar_chart({"x": 0.5}, width=0)

    def test_pie_summary_sorted_by_share(self):
        text = ascii_pie_summary({"cpu park": 0.05, "correct": 0.65,
                                  "panic park": 0.30})
        assert text.startswith("correct")
        assert "panic park 30.0%" in text
        assert ascii_pie_summary({}) == "(no data)"

    def test_series_table_rendering_and_validation(self):
        table = ascii_series_table(
            [(25, 0.5, 0.4), (100, 0.65, 0.3)],
            headers=["rate", "correct", "panic"],
        )
        assert "rate" in table and "0.650" in table
        with pytest.raises(AnalysisError):
            ascii_series_table([(1, 2)], headers=["a", "b", "c"])
        with pytest.raises(AnalysisError):
            ascii_series_table([], headers=[])
