"""Tests for the FreeRTOS model: queue, tasks, scheduler, workload."""

import pytest

from repro.errors import SchedulerError
from repro.guests.base import GuestState
from repro.guests.freertos.kernel import FreeRTOSKernel, KernelConfig
from repro.guests.freertos.queue import MessageQueue
from repro.guests.freertos.task import EffectKind, Task, TaskEffect, TaskState
from repro.guests.freertos.workloads import (
    NUM_FLOAT_TASKS,
    NUM_INTEGER_TASKS,
    build_paper_workload,
)
from repro.hypervisor.traps import TrapCode


class TestMessageQueue:
    def test_fifo_order(self):
        queue = MessageQueue("q", capacity=4)
        for value in (1, 2, 3):
            assert queue.send(value)
        assert [queue.receive().payload for _ in range(3)] == [1, 2, 3]
        assert queue.receive() is None

    def test_capacity_and_drop_counting(self):
        queue = MessageQueue("q", capacity=2)
        assert queue.send("a") and queue.send("b")
        assert queue.full
        assert not queue.send("c")
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_counters_and_watermark(self):
        queue = MessageQueue("q", capacity=8)
        for value in range(5):
            queue.send(value)
        queue.receive()
        assert queue.sent == 5
        assert queue.received == 1
        assert queue.high_watermark == 5

    def test_peek_does_not_consume(self):
        queue = MessageQueue("q")
        queue.send("x")
        assert queue.peek().payload == "x"
        assert len(queue) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(SchedulerError):
            MessageQueue("q", capacity=0)

    def test_clear_empties_queue(self):
        queue = MessageQueue("q")
        queue.send(1)
        queue.clear()
        assert queue.empty


class TestTask:
    @staticmethod
    def noop_body(task, now):
        return [TaskEffect(kind=EffectKind.PRINT, text="ran")]

    def test_validation(self):
        with pytest.raises(SchedulerError):
            Task(name="", priority=1, period=1.0, body=self.noop_body)
        with pytest.raises(SchedulerError):
            Task(name="t", priority=-1, period=1.0, body=self.noop_body)
        with pytest.raises(SchedulerError):
            Task(name="t", priority=1, period=0.0, body=self.noop_body)

    def test_release_and_run_cycle(self):
        task = Task(name="t", priority=1, period=1.0, body=self.noop_body)
        assert task.release_if_due(0.0)
        assert task.state is TaskState.READY
        effects = task.run(0.0)
        assert effects[0].text == "ran"
        assert task.state is TaskState.BLOCKED
        assert task.run_count == 1
        assert not task.release_if_due(0.5)
        assert task.release_if_due(1.0)

    def test_run_requires_ready_state(self):
        task = Task(name="t", priority=1, period=1.0, body=self.noop_body)
        with pytest.raises(SchedulerError):
            task.run(0.0)

    def test_missed_deadline_detection(self):
        task = Task(name="t", priority=1, period=1.0, body=self.noop_body)
        task.release_if_due(0.0)
        task.run(0.0)
        # Released a whole period late.
        assert task.release_if_due(2.5)
        assert task.missed_deadlines == 1

    def test_suspend_resume_delete(self):
        task = Task(name="t", priority=1, period=1.0, body=self.noop_body)
        task.suspend()
        assert not task.release_if_due(10.0)
        task.resume(10.0)
        assert task.release_if_due(10.0)
        task.delete()
        assert not task.release_if_due(20.0)


class TestKernelScheduler:
    def make_kernel(self) -> FreeRTOSKernel:
        return FreeRTOSKernel("FreeRTOS", seed=1)

    def test_duplicate_task_names_rejected(self):
        kernel = self.make_kernel()
        kernel.create_task(Task("a", 1, 1.0, TestTask.noop_body))
        with pytest.raises(SchedulerError):
            kernel.create_task(Task("a", 2, 1.0, TestTask.noop_body))

    def test_duplicate_queue_names_rejected(self):
        kernel = self.make_kernel()
        kernel.create_queue("q")
        with pytest.raises(SchedulerError):
            kernel.create_queue("q")

    def test_ready_tasks_sorted_by_priority(self):
        kernel = self.make_kernel()
        low = Task("low", 1, 1.0, TestTask.noop_body)
        high = Task("high", 5, 1.0, TestTask.noop_body)
        kernel.create_task(low)
        kernel.create_task(high)
        ready = kernel._ready_tasks(0.0)
        assert [task.name for task in ready] == ["high", "low"]

    def test_task_by_name(self):
        kernel = self.make_kernel()
        task = Task("x", 1, 1.0, TestTask.noop_body)
        kernel.create_task(task)
        assert kernel.task_by_name("x") is task
        assert kernel.task_by_name("y") is None

    def test_step_requires_running_state(self):
        kernel = self.make_kernel()
        assert kernel.step(1, 0.0, 0.02) == []


class TestPaperWorkload:
    def test_task_set_matches_the_paper_description(self):
        kernel = build_paper_workload()
        names = [task.name for task in kernel.tasks]
        assert "blink" in names
        assert "sender" in names and "receiver" in names
        assert sum(1 for name in names if name.startswith("float-")) == NUM_FLOAT_TASKS
        assert sum(1 for name in names if name.startswith("integer-")) == NUM_INTEGER_TASKS
        assert len(names) == 3 + NUM_FLOAT_TASKS + NUM_INTEGER_TASKS
        assert NUM_INTEGER_TASKS == 15 and NUM_FLOAT_TASKS == 2

    def test_workload_produces_output_and_traps(self, booted_sut):
        booted_sut.run(5.0)
        kernel = booted_sut.freertos
        assert kernel.state is GuestState.RUNNING
        assert kernel.stats.uart_lines > 0
        assert kernel.stats.traps_generated > 0
        runs = kernel.runs_per_task()
        assert runs["blink"] >= 8                     # 0.5 s period over 5 s
        assert runs["sender"] >= 40                   # 0.1 s period
        assert all(count > 0 for count in runs.values())

    def test_blink_task_toggles_the_board_led(self, booted_sut):
        booted_sut.run(3.0)
        assert booted_sut.board.led.blink_count >= 4

    def test_send_receive_tasks_use_the_queue_and_ivshmem(self, booted_sut):
        booted_sut.run(3.0)
        kernel = booted_sut.freertos
        assert kernel.queues["tx"].sent > 0
        assert kernel.queues["tx"].received > 0
        assert kernel.ivshmem is not None
        # Messages sent to the root cell side are pending there (nobody reads
        # them in the default workload).
        assert kernel.ivshmem.pending("BananaPi-Linux") > 0

    def test_status_heartbeat_appears_on_the_uart(self, booted_sut):
        booted_sut.run(3.0)
        lines = booted_sut.board.uart.lines("FreeRTOS")
        assert any("tick=" in line for line in lines)

    def test_compute_tasks_accumulate_results(self, booted_sut):
        booted_sut.run(2.0)
        kernel = booted_sut.freertos
        assert kernel.int_accumulator > 0
        assert kernel.float_accumulator != 0.0

    def test_trap_mix_includes_wfi_cp15_and_mmio(self):
        kernel = build_paper_workload(seed=7)
        # Drive the trap generator directly (no board needed for this check).
        kinds = set()
        import numpy as np
        for _ in range(400):
            for event in kernel._generate_traps(1, 0.0, idle=True):
                kinds.add(event.trap)
        assert TrapCode.WFI in kinds
        assert TrapCode.CP15_ACCESS in kinds


class TestSnapshotDispatchOrder:
    """Regression: the precomputed dispatch order is part of the snapshot.

    ``_priority_order`` used to be rebuilt only by ``create_task``; a
    snapshot taken before a task was added and restored afterwards kept the
    *post*-addition order, so the restored fork scheduled a task that did
    not exist in the captured state.
    """

    def make_kernel(self) -> FreeRTOSKernel:
        kernel = FreeRTOSKernel("FreeRTOS", seed=1)
        kernel.create_task(Task("low", 1, 1.0, TestTask.noop_body))
        kernel.create_task(Task("high", 5, 1.0, TestTask.noop_body))
        return kernel

    def test_restore_rewinds_the_dispatch_order(self):
        kernel = self.make_kernel()
        state = kernel.snapshot_state()
        kernel.create_task(Task("mid", 3, 1.0, TestTask.noop_body))
        assert [task.name for task in kernel._priority_order] == [
            "high", "mid", "low"]
        kernel.restore_state(state)
        assert [task.name for task in kernel._priority_order] == [
            "high", "low"]
        ready = kernel._ready_tasks(0.0)
        assert "mid" not in [task.name for task in ready]

    def test_snapshot_owns_its_order_list(self):
        kernel = self.make_kernel()
        state = kernel.snapshot_state()
        kernel.create_task(Task("mid", 3, 1.0, TestTask.noop_body))
        # The captured list must not see the post-snapshot rebuild.
        assert [task.name for task in state["priority_order"]] == [
            "high", "low"]
