"""Tests for the guest base behaviour (fault propagation) and the Linux model."""

import pytest

from repro.guests.base import GuestState
from repro.guests.linux import LinuxGuest
from repro.hw.registers import Register
from repro.hypervisor.traps import TrapCode


class TestLinuxGuest:
    def test_boot_banner_and_heartbeat(self, booted_sut):
        booted_sut.run(5.0)
        lines = booted_sut.board.uart.lines("BananaPi-Linux")
        assert any("Linux version" in line for line in lines)
        assert any("heartbeat" in line for line in lines)

    def test_step_generates_background_traps(self, booted_sut):
        booted_sut.run(5.0)
        assert booted_sut.linux.stats.traps_generated > 10
        assert booted_sut.linux.healthy()

    def test_on_system_panic_emits_kernel_panic(self, booted_sut):
        booted_sut.hypervisor.panic("injected failure", cpu_id=1)
        linux = booted_sut.linux
        assert linux.kernel_panicked
        assert linux.state is GuestState.PANICKED
        assert not linux.healthy()
        lines = booted_sut.board.uart.lines("BananaPi-Linux")
        assert any("Kernel panic - not syncing" in line for line in lines)

    def test_unbooted_guest_does_not_step(self):
        guest = LinuxGuest(seed=1)
        assert guest.step(0, 0.0, 0.02) == []


class TestFaultPropagationRules:
    """The guest-side rules that turn register corruption into failures."""

    def trap_and_resume(self, sut, register, value, *, seed_guest=None):
        """Take one WFI trap on CPU 1, corrupt one register, resume."""
        guest = seed_guest or sut.freertos
        cpu = sut.board.cpu(1)
        guest.place_registers(1, guest.nominal_registers(1))
        from repro.hypervisor.traps import encode_hsr
        context = cpu.enter_trap("wfi", encode_hsr(TrapCode.WFI))
        context.write(register, value)
        result = sut.hypervisor.handlers.arch_handle_trap(cpu, context)
        follow_up = None
        if result.value == "handled":
            follow_up = guest.resume_from_trap(1, context)
        return result, follow_up

    def test_valid_context_resumes_without_follow_up(self, booted_sut):
        result, follow_up = self.trap_and_resume(booted_sut, Register.R3, 0x42)
        assert result.value == "handled"
        assert follow_up is None

    def test_pc_outside_cell_memory_faults_at_next_fetch(self, booted_sut):
        result, follow_up = self.trap_and_resume(booted_sut, Register.PC, 0xF000_0000)
        assert result.value == "handled"
        assert follow_up is not None
        assert follow_up.trap is TrapCode.PREFETCH_ABORT
        assert follow_up.fault_address == 0xF000_0000

    def test_sp_corruption_faults_only_if_the_stack_is_used(self, booted_sut):
        booted_sut.freertos.stack_use_probability = 1.0
        result, follow_up = self.trap_and_resume(booted_sut, Register.SP, 0xF000_0000)
        assert follow_up is not None
        assert follow_up.trap is TrapCode.DATA_ABORT

    def test_sp_corruption_is_masked_when_the_scheduler_reloads_sp(self, booted_sut):
        booted_sut.freertos.stack_use_probability = 0.0
        result, follow_up = self.trap_and_resume(booted_sut, Register.SP, 0xF000_0000)
        assert follow_up is None
        # The scheduler restored a sane stack pointer on the vCPU.
        restored = booted_sut.board.cpu(1).registers.read(Register.SP)
        assert booted_sut.freertos.cell.memory_map.is_mapped(restored, 4)

    def test_lr_corruption_matters_only_on_return(self, booted_sut):
        booted_sut.freertos.link_return_probability = 1.0
        _, follow_up = self.trap_and_resume(booted_sut, Register.LR, 0xF000_0000)
        assert follow_up is not None and follow_up.trap is TrapCode.PREFETCH_ABORT
        booted_sut.freertos.link_return_probability = 0.0
        _, follow_up = self.trap_and_resume(booted_sut, Register.LR, 0xF000_0000)
        assert follow_up is None

    def test_gpr_corruption_is_benign_for_availability(self, booted_sut):
        for register in (Register.R0, Register.R5, Register.R12):
            _, follow_up = self.trap_and_resume(booted_sut, register, 0xFFFF_FFFF)
            assert follow_up is None

    def test_invalid_cpsr_is_caught_by_the_hypervisor_not_the_guest(self, booted_sut):
        result, follow_up = self.trap_and_resume(booted_sut, Register.CPSR, 0b11010)
        assert result.value == "panic"
        assert follow_up is None
        assert booted_sut.hypervisor.panicked

    def test_crash_marks_guest_dead(self, booted_sut):
        guest = booted_sut.freertos
        guest.crash("stack overflow")
        assert not guest.alive
        assert guest.crash_reason == "stack overflow"
        assert guest.step(1, 0.0, 0.02) == []
