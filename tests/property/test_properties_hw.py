"""Property-based tests for the hardware substrate invariants."""

from hypothesis import given, settings, strategies as st

from repro.errors import MemoryAccessError, RegionOverlapError
from repro.hw.memory import MemoryFlags, MemoryRegion, PhysicalMemory
from repro.hw.registers import (
    ARCHITECTURAL_REGISTERS,
    Register,
    RegisterFile,
    TrapContext,
    WORD_BITS,
    WORD_MASK,
    flip_bit,
)

registers_strategy = st.sampled_from(list(ARCHITECTURAL_REGISTERS))
words = st.integers(min_value=0, max_value=WORD_MASK)
bits = st.integers(min_value=0, max_value=WORD_BITS - 1)


class TestBitFlipAlgebra:
    @given(value=words, bit=bits)
    def test_flip_is_an_involution(self, value, bit):
        assert flip_bit(flip_bit(value, bit), bit) == value

    @given(value=words, bit=bits)
    def test_flip_changes_exactly_one_bit(self, value, bit):
        flipped = flip_bit(value, bit)
        assert bin(value ^ flipped).count("1") == 1
        assert 0 <= flipped <= WORD_MASK

    @given(value=words, first=bits, second=bits)
    def test_flips_commute(self, value, first, second):
        assert flip_bit(flip_bit(value, first), second) == \
            flip_bit(flip_bit(value, second), first)


class TestRegisterFileProperties:
    @given(register=registers_strategy, value=words)
    def test_write_read_round_trip(self, register, value):
        regs = RegisterFile()
        regs.write(register, value)
        assert regs.read(register) == value

    @given(values=st.dictionaries(registers_strategy, words, min_size=1))
    def test_snapshot_load_round_trip(self, values):
        regs = RegisterFile()
        regs.load(values)
        snapshot = regs.snapshot()
        other = RegisterFile()
        other.load(snapshot)
        assert other == regs

    @given(register=registers_strategy, value=words, bit=bits)
    def test_context_flip_matches_flip_bit(self, register, value, bit):
        context = TrapContext(cpu_id=0, registers={register: value})
        context.flip(register, bit)
        assert context.read(register) == flip_bit(value, bit)

    @given(values=st.dictionaries(registers_strategy, words))
    def test_diff_is_empty_iff_contexts_equal(self, values):
        context = TrapContext(cpu_id=0, registers=dict(values))
        clone = context.copy()
        assert context.diff(clone) == []
        if values:
            register = next(iter(values))
            clone.flip(register, 3)
            assert len(context.diff(clone)) == 1


region_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 20),
              st.integers(min_value=1, max_value=1 << 12)),
    min_size=1, max_size=8,
)


class TestMemoryProperties:
    @given(specs=region_specs)
    @settings(max_examples=60)
    def test_regions_never_overlap_after_construction(self, specs):
        memory = PhysicalMemory()
        added = []
        for index, (start, size) in enumerate(specs):
            region = MemoryRegion(f"r{index}", start, size, MemoryFlags.RW)
            try:
                memory.add_region(region)
                added.append(region)
            except RegionOverlapError:
                # The invariant is that rejection happens exactly when the
                # candidate overlaps something already accepted.
                assert any(region.overlaps(existing) for existing in added)
        for region in added:
            others = [other for other in added if other is not region]
            assert not any(region.overlaps(other) for other in others)

    @given(offset=st.integers(min_value=0, max_value=0x2000 - 8),
           payload=st.binary(min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_write_then_read_returns_the_same_bytes(self, offset, payload):
        memory = PhysicalMemory([MemoryRegion("ram", 0x0, 0x2000, MemoryFlags.RW)])
        memory.write_bytes(offset, payload)
        assert memory.read_bytes(offset, len(payload)) == payload

    @given(address=st.integers(min_value=0x3000, max_value=0x10000))
    def test_unmapped_addresses_always_fault(self, address):
        memory = PhysicalMemory([MemoryRegion("ram", 0x0, 0x2000, MemoryFlags.RW)])
        try:
            memory.read(address, 4)
            assert False, "expected a fault"
        except MemoryAccessError as error:
            assert error.address == address
