"""Property-based tests for framework invariants (fault models, configs,
queues, classifier, records)."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core.faultmodels import MultiRegisterBitFlip, SingleBitFlip
from repro.core.outcomes import (
    ManagementEvidence,
    Outcome,
    OutcomeClassifier,
    OutcomeEvidence,
)
from repro.core.monitors import AvailabilityReport, HypervisorObservation
from repro.core.recording import ExperimentRecord
from repro.core.triggers import EveryNCalls
from repro.errors import ConfigurationError
from repro.guests.freertos.queue import MessageQueue
from repro.hw.memory import MemoryFlags
from repro.hw.registers import ARCHITECTURAL_REGISTERS, TrapContext, WORD_MASK
from repro.hypervisor.config import CellConfig, MemoryAssignment
from repro.hypervisor.paging import CellMemoryMap

words = st.integers(min_value=0, max_value=WORD_MASK)


class TestFaultModelProperties:
    @given(seed=st.integers(0, 2**32 - 1),
           values=st.dictionaries(st.sampled_from(list(ARCHITECTURAL_REGISTERS)),
                                  words))
    @settings(max_examples=80)
    def test_single_bit_flip_changes_exactly_one_register_by_one_bit(self, seed, values):
        context = TrapContext(cpu_id=0, registers=dict(values))
        reference = context.copy()
        faults = SingleBitFlip().apply(context, np.random.default_rng(seed))
        diff = reference.diff(context)
        assert len(faults) == 1 and len(diff) == 1
        register, before, after = diff[0]
        assert bin(before ^ after).count("1") == 1
        assert register is faults[0].register

    @given(seed=st.integers(0, 2**32 - 1), count=st.integers(1, 17))
    @settings(max_examples=80)
    def test_multi_register_flip_touches_exactly_count_registers(self, seed, count):
        context = TrapContext(cpu_id=0)
        reference = context.copy()
        faults = MultiRegisterBitFlip(count=count).apply(
            context, np.random.default_rng(seed)
        )
        assert len(faults) == count
        assert len({fault.register for fault in faults}) == count
        assert len(reference.diff(context)) == count

    @given(n=st.integers(1, 500), calls=st.integers(1, 2000))
    @settings(max_examples=60)
    def test_every_n_trigger_fires_floor_calls_over_n_times(self, n, calls):
        rng = np.random.default_rng(0)
        trigger = EveryNCalls(n)
        fired = sum(trigger.should_fire(index, rng) for index in range(1, calls + 1))
        assert fired == calls // n


assignments = st.lists(
    st.tuples(st.integers(0, 64), st.integers(1, 16), st.integers(0, 256)),
    min_size=1, max_size=6,
)


class TestConfigProperties:
    @given(specs=assignments, cpus=st.sets(st.integers(0, 3), min_size=1))
    @settings(max_examples=80)
    def test_serialization_round_trip_preserves_validated_configs(self, specs, cpus):
        memory = []
        for index, (virt_page, size_pages, phys_page) in enumerate(specs):
            memory.append(
                MemoryAssignment(
                    name=f"region-{index}",
                    virt_start=virt_page * 0x1000,
                    phys_start=0x4000_0000 + phys_page * 0x1000,
                    size=size_pages * 0x1000,
                    flags=MemoryFlags.RW,
                )
            )
        config = CellConfig(name="prop-cell", cpus=set(cpus), memory=memory)
        try:
            config.validate()
        except ConfigurationError:
            assume(False)
        restored = CellConfig.from_bytes(config.to_bytes())
        assert restored.cpus == config.cpus
        assert [m.virt_start for m in restored.memory] == [m.virt_start for m in config.memory]
        assert [m.size for m in restored.memory] == [m.size for m in config.memory]

    @given(specs=assignments)
    @settings(max_examples=80)
    def test_memory_map_never_accepts_overlapping_guest_ranges(self, specs):
        memory = [
            MemoryAssignment(
                name=f"region-{index}",
                virt_start=virt_page * 0x1000,
                phys_start=0x4000_0000 + index * 0x100_0000,
                size=size_pages * 0x1000,
                flags=MemoryFlags.RW,
            )
            for index, (virt_page, size_pages, _) in enumerate(specs)
        ]
        try:
            cell_map = CellMemoryMap.from_assignments("cell", memory)
        except ConfigurationError:
            return
        mappings = cell_map.mappings
        for mapping in mappings:
            for other in mappings:
                if mapping is other:
                    continue
                assert not (mapping.virt_start < other.virt_end
                            and other.virt_start < mapping.virt_end)


class TestQueueProperties:
    @given(operations=st.lists(
        st.one_of(st.tuples(st.just("send"), st.integers()),
                  st.tuples(st.just("recv"), st.just(0))),
        max_size=200,
    ), capacity=st.integers(1, 16))
    @settings(max_examples=80)
    def test_queue_is_fifo_and_bounded(self, operations, capacity):
        queue = MessageQueue("q", capacity=capacity)
        model = []
        for kind, value in operations:
            if kind == "send":
                accepted = queue.send(value)
                if len(model) < capacity:
                    assert accepted
                    model.append(value)
                else:
                    assert not accepted
            else:
                item = queue.receive()
                if model:
                    assert item is not None and item.payload == model.pop(0)
                else:
                    assert item is None
            assert len(queue) == len(model)
            assert len(queue) <= capacity


def make_evidence(panicked, parked_error, create_failed, target_silent):
    observation = HypervisorObservation(
        panicked=panicked,
        panic_reason="r" if panicked else None,
        parked_cpus=((1, 0x24),) if parked_error else (),
        cpu_online_failures=0,
        failed_hypercalls=0,
        cell_states={"FreeRTOS": "running"},
        inconsistent_cells=(),
    )
    availability = {
        "FreeRTOS": AvailabilityReport(
            cell_name="FreeRTOS", window_start=0.0, window_end=60.0,
            lines=0 if target_silent else 100,
            lines_per_second=0.0 if target_silent else 1.6,
            silent_intervals=1 if target_silent else 0,
            longest_silence=60.0 if target_silent else 1.0,
            available=not target_silent,
        ),
        "root": AvailabilityReport(
            cell_name="root", window_start=0.0, window_end=60.0, lines=30,
            lines_per_second=0.5, silent_intervals=0, longest_silence=2.0,
            available=True,
        ),
    }
    management = ManagementEvidence(
        create_attempted=create_failed, create_succeeded=not create_failed,
    )
    return OutcomeEvidence(
        observation=observation, availability=availability,
        management=management, target_cell="FreeRTOS", root_cell="root",
    )


class TestClassifierProperties:
    @given(panicked=st.booleans(), parked=st.booleans(),
           create_failed=st.booleans(), silent=st.booleans())
    def test_classifier_is_total_and_respects_precedence(self, panicked, parked,
                                                         create_failed, silent):
        evidence = make_evidence(panicked, parked, create_failed, silent)
        classified = OutcomeClassifier().classify(evidence)
        assert isinstance(classified.outcome, Outcome)
        assert classified.rationale
        if panicked:
            assert classified.outcome is Outcome.PANIC_PARK
        elif create_failed:
            assert classified.outcome is Outcome.INVALID_ARGUMENTS
        elif parked:
            assert classified.outcome is Outcome.CPU_PARK
        elif not silent:
            assert classified.outcome is Outcome.CORRECT


record_strategy = st.builds(
    ExperimentRecord,
    spec_name=st.text(min_size=1, max_size=20),
    outcome=st.sampled_from([outcome.value for outcome in Outcome]),
    rationale=st.text(max_size=40),
    injections=st.integers(0, 1000),
    duration=st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    seed=st.integers(0, 10**6),
    scenario=st.sampled_from(["steady_state", "lifecycle_under_fault"]),
    target=st.text(min_size=1, max_size=30),
    fault_model=st.text(min_size=1, max_size=30),
    intensity=st.sampled_from(["medium", "high", "custom"]),
    register_class_counts=st.dictionaries(
        st.sampled_from(["gpr", "sp", "lr", "pc", "status"]), st.integers(0, 50),
        max_size=5,
    ),
    target_cell_lines=st.integers(0, 10_000),
    root_cell_lines=st.integers(0, 10_000),
    create_attempted=st.booleans(),
    create_succeeded=st.booleans(),
    start_attempted=st.booleans(),
    start_succeeded=st.booleans(),
)


class TestRecordProperties:
    @given(record=record_strategy)
    @settings(max_examples=80)
    def test_json_round_trip_is_lossless(self, record):
        assert ExperimentRecord.from_json(record.to_json()) == record
