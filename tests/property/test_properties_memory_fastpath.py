"""Property tests: the indexed/fast-path memory dispatch is observationally
identical to the legacy generic path.

The legacy oracle below re-implements the pre-optimization dispatch
(linear region scan, generic chunked page walk, no caches) against its own
page store. Randomised read/write/fetch sequences — including MMIO regions,
unaligned and page-straddling accesses, and permission violations — must
produce byte-identical results and identical exceptions on both
implementations, and leave identical page contents behind.

One deliberate divergence is encoded in the oracle: instruction fetch from an
IO region now raises :class:`MemoryAccessError` (executing a device window is
a wild-jump symptom the classifier must see) where the legacy code silently
read the backing pages.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import MemoryAccessError
from repro.hw.memory import (
    PAGE_SHIFT,
    PAGE_SIZE,
    AccessType,
    MemoryFlags,
    MemoryRegion,
    MmioHandler,
    PhysicalMemory,
)


class RecordingMmio(MmioHandler):
    """Deterministic MMIO device: reads echo the offset, writes are logged."""

    def __init__(self) -> None:
        self.writes = []

    def mmio_read(self, offset: int, size: int) -> int:
        return (offset * 2654435761) & ((1 << (8 * size)) - 1)

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        self.writes.append((offset, value, size))


class LegacyMemoryOracle:
    """The pre-optimization dispatch semantics, reimplemented verbatim."""

    def __init__(self, regions, mmio_names):
        self.regions = list(regions)
        self.pages = {}
        self.handlers = {name: RecordingMmio() for name in mmio_names}

    def _find(self, address):
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def _check(self, address, size, access):
        region = self._find(address)
        if region is None or not region.contains(address, size):
            raise MemoryAccessError(address, size, access.value,
                                    "address not mapped")
        if not region.permits(access):
            raise MemoryAccessError(
                address, size, access.value,
                f"permission denied in region {region.name!r}",
            )
        return region

    def _read_bytes(self, address, size):
        out = bytearray(size)
        offset = 0
        while offset < size:
            page_index = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & (PAGE_SIZE - 1)
            chunk = min(size - offset, PAGE_SIZE - page_offset)
            page = self.pages.get(page_index)
            if page is not None:
                out[offset:offset + chunk] = page[page_offset:page_offset + chunk]
            offset += chunk
        return out

    def _write_bytes(self, address, data):
        offset = 0
        size = len(data)
        while offset < size:
            page_index = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & (PAGE_SIZE - 1)
            chunk = min(size - offset, PAGE_SIZE - page_offset)
            page = self.pages.setdefault(page_index, bytearray(PAGE_SIZE))
            page[page_offset:page_offset + chunk] = data[offset:offset + chunk]
            offset += chunk

    def read(self, address, size):
        region = self._check(address, size, AccessType.READ)
        handler = self.handlers.get(region.name)
        if handler is not None:
            return handler.mmio_read(address - region.start, size)
        return int.from_bytes(self._read_bytes(address, size), "little")

    def write(self, address, value, size):
        region = self._check(address, size, AccessType.WRITE)
        handler = self.handlers.get(region.name)
        if handler is not None:
            handler.mmio_write(address - region.start, value, size)
            return
        self._write_bytes(address, int(value).to_bytes(size, "little", signed=False))

    def fetch(self, address, size):
        region = self._check(address, size, AccessType.EXECUTE)
        # Intended semantics (shared with the new implementation): executing
        # a device window is always a fault.
        if region.name in self.handlers or region.flags & MemoryFlags.IO:
            raise MemoryAccessError(
                address, size, "execute",
                f"instruction fetch from MMIO region {region.name!r}",
            )
        return int.from_bytes(self._read_bytes(address, size), "little")


#: A memory map exercising every interesting case: RWX RAM whose bounds are
#: *not* page aligned, a read-only window, an MMIO window smaller than a
#: page, an executable+IO window (fetch must fault), and unmapped holes.
REGIONS = [
    MemoryRegion("ram", 0x0000, 0x2800, MemoryFlags.RWX),          # ends mid-page
    MemoryRegion("rodata", 0x3000, 0x1000, MemoryFlags.READ),
    MemoryRegion("mmio", 0x5000, 0x400, MemoryFlags.RW | MemoryFlags.IO),
    MemoryRegion("xio", 0x6000, 0x1000,
                 MemoryFlags.RWX | MemoryFlags.IO),
]
MMIO_NAMES = ["mmio", "xio"]

operations = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "fetch"]),
        st.integers(min_value=0, max_value=0x8000),       # includes holes
        st.sampled_from([1, 2, 4, 8]),                    # 8 exercises chunking
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    ),
    min_size=1, max_size=80,
)


def build_fast():
    memory = PhysicalMemory(REGIONS)
    for name in MMIO_NAMES:
        memory.attach_mmio(name, RecordingMmio())
    return memory


class TestFastPathParity:
    @given(ops=operations)
    @settings(max_examples=120, deadline=None)
    def test_randomised_sequences_are_observationally_identical(self, ops):
        fast = build_fast()
        legacy = LegacyMemoryOracle(REGIONS, MMIO_NAMES)
        for kind, address, size, value in ops:
            value &= (1 << (8 * size)) - 1
            fast_result = legacy_result = None
            fast_error = legacy_error = None
            try:
                if kind == "read":
                    fast_result = fast.read(address, size)
                elif kind == "write":
                    fast_result = fast.write(address, value, size)
                else:
                    fast_result = fast.fetch(address, size)
            except MemoryAccessError as error:
                fast_error = (error.address, error.size, error.kind)
            try:
                if kind == "read":
                    legacy_result = legacy.read(address, size)
                elif kind == "write":
                    legacy_result = legacy.write(address, value, size)
                else:
                    legacy_result = legacy.fetch(address, size)
            except MemoryAccessError as error:
                legacy_error = (error.address, error.size, error.kind)
            assert fast_result == legacy_result, (kind, hex(address), size)
            assert fast_error == legacy_error, (kind, hex(address), size)
        # The sparse stores must agree byte for byte wherever either wrote.
        touched = set(fast._pages) | set(legacy.pages)
        for page in touched:
            fast_page = bytes(fast._pages.get(page, b"\x00" * PAGE_SIZE))
            legacy_page = bytes(legacy.pages.get(page, b"\x00" * PAGE_SIZE))
            assert fast_page == legacy_page, f"page 0x{page:x} diverged"
        # MMIO traffic must have reached the handlers identically.
        for name in MMIO_NAMES:
            assert (fast._mmio_handlers[name].writes
                    == legacy.handlers[name].writes)

    @given(address=st.integers(min_value=0, max_value=0x27F0),
           size=st.sampled_from([1, 2, 4]),
           value=st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=80, deadline=None)
    def test_page_cache_survives_region_churn(self, address, size, value):
        """add/remove_region must invalidate the page-resolution cache."""
        memory = build_fast()
        value &= (1 << (8 * size)) - 1
        memory.write(address, value, size)          # populates the page cache
        assert memory.read(address, size) == value
        memory.add_region(MemoryRegion("late", 0x9000, 0x1000, MemoryFlags.RW))
        assert memory.read(address, size) == value  # cache rebuilt, same data
        memory.remove_region("late")
        assert memory.read(address, size) == value
