"""Tests for the jailhouse-style management CLI."""

import pytest

from repro.hw.board import BananaPiBoard
from repro.hypervisor.cell import CellState, LoadedImage
from repro.hypervisor.config import bananapi_system_config, freertos_cell_config
from repro.hypervisor.core import Hypervisor
from repro.hypervisor.cli import JailhouseCli


@pytest.fixture
def cli() -> JailhouseCli:
    board = BananaPiBoard()
    board.power_on()
    hv = Hypervisor(board)
    cli = JailhouseCli(hv)
    assert cli.enable(bananapi_system_config()).success
    return cli


def test_enable_reports_root_cell_name(cli: JailhouseCli):
    assert "BananaPi-Linux" in cli.history[0].output


def test_enable_twice_reports_error(cli: JailhouseCli):
    result = cli.enable(bananapi_system_config())
    assert not result.success
    assert "Error" in result.output


def test_full_lifecycle_through_the_cli(cli: JailhouseCli):
    config = freertos_cell_config()
    create = cli.cell_create(config)
    assert create.success and 'Created cell "FreeRTOS"' in create.output

    load = cli.cell_load("FreeRTOS", LoadedImage("ram", 0x0, 64 << 10))
    assert load.success

    start = cli.cell_start("FreeRTOS")
    assert start.success and 'Started cell "FreeRTOS"' in start.output
    cell = cli._hv.cell_by_name("FreeRTOS")
    assert cell.state is CellState.RUNNING

    listing = cli.cell_list()
    assert "FreeRTOS" in listing.output and "running" in listing.output

    shutdown = cli.cell_shutdown("FreeRTOS")
    assert shutdown.success
    assert cell.state is CellState.SHUT_DOWN

    destroy = cli.cell_destroy("FreeRTOS")
    assert destroy.success and 'Closed cell "FreeRTOS"' in destroy.output
    assert cli._hv.cell_by_name("FreeRTOS") is None


def test_operations_on_unknown_cells_fail_cleanly(cli: JailhouseCli):
    assert not cli.cell_start("ghost").success
    assert not cli.cell_shutdown("ghost").success
    assert not cli.cell_destroy("ghost").success
    assert not cli.cell_load("ghost", LoadedImage("ram", 0, 16)).success


def test_load_into_bad_region_reports_error(cli: JailhouseCli):
    cli.cell_create(freertos_cell_config())
    result = cli.cell_load("FreeRTOS", LoadedImage("ghost-region", 0, 16))
    assert not result.success
    assert "Error" in result.output


def test_disable_refused_while_cells_exist_then_succeeds(cli: JailhouseCli):
    cli.cell_create(freertos_cell_config())
    assert not cli.disable().success
    cli.cell_destroy("FreeRTOS")
    assert cli.disable().success


def test_cell_ids_are_usable_in_place_of_names(cli: JailhouseCli):
    create = cli.cell_create(freertos_cell_config())
    cell_id = create.code
    assert cli.cell_load(cell_id, LoadedImage("ram", 0x0, 16)).success
    assert cli.cell_start(cell_id).success


def test_history_records_every_command(cli: JailhouseCli):
    cli.cell_create(freertos_cell_config())
    cli.cell_list()
    commands = [entry.command for entry in cli.history]
    assert "enable" in commands
    assert "cell create FreeRTOS" in commands
    assert "cell list" in commands
