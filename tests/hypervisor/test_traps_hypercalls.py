"""Tests for trap encoding and the hypercall ABI."""

import pytest

from repro.hypervisor.hypercalls import (
    Hypercall,
    HypercallRequest,
    HypercallResult,
    RETURN_MESSAGES,
    ReturnCode,
    is_privileged,
)
from repro.hypervisor.traps import (
    ExceptionClass,
    HANDLED_CLASSES,
    TrapCode,
    UNHANDLED_TRAP_ERROR,
    decode_exception_class,
    describe_trap,
    encode_hsr,
    exception_class,
    is_handled,
    iss,
)


class TestTrapEncoding:
    def test_unhandled_trap_error_is_0x24_as_in_the_paper(self):
        assert UNHANDLED_TRAP_ERROR == 0x24
        assert ExceptionClass.DATA_ABORT_LOWER == 0x24

    @pytest.mark.parametrize("trap,expected", [
        (TrapCode.HYPERCALL, ExceptionClass.HVC32),
        (TrapCode.WFI, ExceptionClass.WFI_WFE),
        (TrapCode.CP15_ACCESS, ExceptionClass.CP15_TRAP),
        (TrapCode.SMC, ExceptionClass.SMC32),
        (TrapCode.DATA_ABORT, ExceptionClass.DATA_ABORT_LOWER),
        (TrapCode.PREFETCH_ABORT, ExceptionClass.PREFETCH_ABORT_LOWER),
    ])
    def test_encode_decode_round_trip(self, trap, expected):
        hsr = encode_hsr(trap)
        assert decode_exception_class(hsr) is expected

    def test_iss_is_preserved(self):
        hsr = encode_hsr(TrapCode.DATA_ABORT, iss=0x123)
        assert iss(hsr) == 0x123
        assert exception_class(hsr) == 0x24

    def test_iss_is_masked_to_25_bits(self):
        hsr = encode_hsr(TrapCode.WFI, iss=0xFFFF_FFFF)
        assert iss(hsr) == (1 << 25) - 1

    def test_unknown_encoding_decodes_to_none(self):
        hsr = 0x3F << 26
        assert decode_exception_class(hsr) is None
        assert not is_handled(hsr)

    def test_handled_classes_include_hvc_and_aborts(self):
        assert ExceptionClass.HVC32 in HANDLED_CLASSES
        assert ExceptionClass.DATA_ABORT_LOWER in HANDLED_CLASSES
        assert is_handled(encode_hsr(TrapCode.HYPERCALL))

    def test_describe_trap_mentions_class_name(self):
        text = describe_trap(encode_hsr(TrapCode.DATA_ABORT))
        assert "0x24" in text
        assert "DATA_ABORT_LOWER" in text
        assert "INVALID" in describe_trap(0x3F << 26)


class TestHypercallAbi:
    def test_hypercall_numbers_follow_jailhouse(self):
        assert Hypercall.DISABLE == 0
        assert Hypercall.CELL_CREATE == 1
        assert Hypercall.CELL_START == 2
        assert Hypercall.CELL_DESTROY == 4

    def test_privileged_calls_are_the_cell_management_ones(self):
        assert is_privileged(Hypercall.CELL_CREATE)
        assert is_privileged(Hypercall.CELL_DESTROY)
        assert not is_privileged(Hypercall.HYPERVISOR_GET_INFO)
        assert not is_privileged(Hypercall.DEBUG_CONSOLE_PUTC)

    def test_request_knows_whether_its_code_is_defined(self):
        assert HypercallRequest(code=1).known()
        assert not HypercallRequest(code=77).known()
        assert HypercallRequest(code=77).hypercall is None

    def test_result_ok_and_message(self):
        request = HypercallRequest(code=1, arg1=0x1000)
        ok = HypercallResult(request, 3)
        assert ok.ok
        error = HypercallResult(request, int(ReturnCode.EINVAL), "bad config")
        assert not error.ok
        assert error.message == "Invalid argument: bad config"

    def test_invalid_argument_message_matches_the_paper_wording(self):
        # The paper reports the management tool printing "invalid arguments".
        assert RETURN_MESSAGES[ReturnCode.EINVAL] == "Invalid argument"

    def test_describe_unknown_code(self):
        assert ReturnCode.describe(-99) == "unknown(-99)"
        assert ReturnCode.describe(-22) == "EINVAL"
