"""Tests for the three hookable entry points (arch_handle_hvc/trap, irqchip)."""

import pytest

from repro.hw.board import BananaPiBoard
from repro.hw.cpu import CpuState
from repro.hw.registers import Register, TrapContext, make_cpsr
from repro.hypervisor.cell import LoadedImage
from repro.hypervisor.config import bananapi_system_config, freertos_cell_config
from repro.hypervisor.core import Hypervisor, HypervisorEventKind
from repro.hypervisor.handlers import (
    ALL_HANDLERS,
    HANDLER_HVC,
    HANDLER_IRQCHIP,
    HANDLER_TRAP,
    PSCI_CPU_ON,
    TrapResult,
)
from repro.hypervisor.hypercalls import Hypercall, ReturnCode
from repro.hypervisor.traps import TrapCode, encode_hsr


@pytest.fixture
def hv() -> Hypervisor:
    board = BananaPiBoard()
    board.power_on()
    hypervisor = Hypervisor(board)
    hypervisor.enable(bananapi_system_config())
    return hypervisor


def started_inmate(hv: Hypervisor):
    address = hv.stage_config(freertos_cell_config())
    create = hv.issue_hypercall(0, int(Hypercall.CELL_CREATE), address)
    cell = hv.cell_by_id(create.code)
    cell.load_image(LoadedImage("ram", entry_point=0x0, size=4096))
    hv.issue_hypercall(0, int(Hypercall.CELL_START), create.code)
    return cell


def make_trap_context(hv: Hypervisor, cpu_id: int, trap: TrapCode,
                      registers=None) -> TrapContext:
    cpu = hv.board.cpu(cpu_id)
    if registers:
        for register, value in registers.items():
            cpu.registers.write(register, value)
    return cpu.enter_trap(trap.value, encode_hsr(trap))


class TestEntryHooks:
    def test_hooks_fire_with_handler_name_cpu_and_context(self, hv: Hypervisor):
        seen = []
        hv.handlers.add_entry_hook(
            HANDLER_HVC, lambda name, cpu, ctx: seen.append((name, cpu.cpu_id))
        )
        hv.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        assert seen == [(HANDLER_HVC, 0)]

    def test_hook_can_corrupt_the_context_before_dispatch(self, hv: Hypervisor):
        # Corrupting r0 at handler entry turns a valid hypercall into an
        # unknown one, which must be rejected — the paper's core mechanism.
        def corrupt(name, cpu, context):
            context.write(Register.R0, 0xFFFF)

        hv.handlers.add_entry_hook(HANDLER_HVC, corrupt)
        outcome = hv.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        assert outcome.code == int(ReturnCode.ENOSYS)

    def test_unknown_handler_name_is_rejected(self, hv: Hypervisor):
        with pytest.raises(KeyError):
            hv.handlers.add_entry_hook("bogus", lambda *a: None)

    def test_remove_and_clear_hooks(self, hv: Hypervisor):
        calls = []
        hook = lambda name, cpu, ctx: calls.append(name)  # noqa: E731
        hv.handlers.add_entry_hook(HANDLER_HVC, hook)
        hv.handlers.remove_entry_hook(HANDLER_HVC, hook)
        hv.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        assert calls == []
        hv.handlers.add_entry_hook(HANDLER_TRAP, hook)
        hv.handlers.clear_hooks()
        assert not hv.handlers._hooks[HANDLER_TRAP]

    def test_call_counters_per_handler(self, hv: Hypervisor):
        before = hv.handlers.call_count(HANDLER_HVC)
        hv.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        assert hv.handlers.call_count(HANDLER_HVC) == before + 1
        assert set(hv.handlers.stats) == set(ALL_HANDLERS)


class TestArchHandleTrap:
    def test_wfi_is_handled(self, hv: Hypervisor):
        cell = started_inmate(hv)
        traps_before = cell.stats.traps
        context = make_trap_context(hv, 1, TrapCode.WFI)
        result = hv.handlers.arch_handle_trap(hv.board.cpu(1), context)
        assert result is TrapResult.HANDLED
        assert cell.stats.traps == traps_before + 1

    def test_cp15_access_returns_zero_in_r0(self, hv: Hypervisor):
        started_inmate(hv)
        context = make_trap_context(hv, 1, TrapCode.CP15_ACCESS,
                                    {Register.R0: 0x55})
        result = hv.handlers.arch_handle_trap(hv.board.cpu(1), context)
        assert result is TrapResult.HANDLED
        assert context.read(Register.R0) == 0

    def test_hvc_exception_class_routes_to_hvc_handler(self, hv: Hypervisor):
        context = make_trap_context(
            hv, 0, TrapCode.HYPERCALL,
            {Register.R0: int(Hypercall.HYPERVISOR_GET_INFO)},
        )
        result = hv.handlers.arch_handle_trap(hv.board.cpu(0), context)
        assert result is TrapResult.HANDLED
        assert hv.handlers.stats[HANDLER_HVC].calls >= 1

    def test_data_abort_on_mapped_window_is_mmio_emulated(self, hv: Hypervisor):
        cell = started_inmate(hv)
        context = make_trap_context(hv, 1, TrapCode.DATA_ABORT)
        result = hv.handlers.arch_handle_trap(
            hv.board.cpu(1), context, fault_address=0x3000_0010
        )
        assert result is TrapResult.HANDLED
        assert cell.stats.mmio_accesses == 1

    def test_data_abort_on_unmapped_address_parks_with_error_0x24(self, hv: Hypervisor):
        cell = started_inmate(hv)
        context = make_trap_context(hv, 1, TrapCode.DATA_ABORT)
        result = hv.handlers.arch_handle_trap(
            hv.board.cpu(1), context, fault_address=0xDEAD_0000
        )
        assert result is TrapResult.UNHANDLED_PARKED
        cpu = hv.board.cpu(1)
        assert cpu.is_parked
        assert cpu.park_history[-1].error_code == 0x24
        assert not hv.panicked
        # The other cell (root) is untouched: isolation preserved.
        assert hv.board.cpu(0).is_executing
        lines = "\n".join(hv.board.uart.lines("hypervisor"))
        assert "error 0x24" in lines

    def test_prefetch_abort_on_unmapped_address_panics_the_system(self, hv: Hypervisor):
        started_inmate(hv)
        context = make_trap_context(hv, 1, TrapCode.PREFETCH_ABORT)
        result = hv.handlers.arch_handle_trap(
            hv.board.cpu(1), context, fault_address=0xDEAD_0000
        )
        assert result is TrapResult.PANIC
        assert hv.panicked
        assert all(not cpu.is_executing for cpu in hv.board.cpus)

    def test_prefetch_abort_on_mapped_executable_address_is_spurious(self, hv: Hypervisor):
        started_inmate(hv)
        context = make_trap_context(hv, 1, TrapCode.PREFETCH_ABORT)
        result = hv.handlers.arch_handle_trap(
            hv.board.cpu(1), context, fault_address=0x100
        )
        assert result is TrapResult.HANDLED
        assert not hv.panicked

    def test_unknown_exception_class_parks_the_cpu(self, hv: Hypervisor):
        started_inmate(hv)
        cpu = hv.board.cpu(1)
        context = cpu.enter_trap("unknown", encode_hsr(TrapCode.UNKNOWN))
        result = hv.handlers.arch_handle_trap(cpu, context)
        assert result is TrapResult.UNHANDLED_PARKED
        assert cpu.is_parked

    def test_illegal_exception_return_panics(self, hv: Hypervisor):
        started_inmate(hv)
        context = make_trap_context(hv, 1, TrapCode.WFI)
        context.write(Register.CPSR, make_cpsr(0b11010))   # HYP mode
        result = hv.handlers.arch_handle_trap(hv.board.cpu(1), context)
        assert result is TrapResult.PANIC
        assert hv.panicked

    def test_containment_policy_fails_only_the_cell(self):
        board = BananaPiBoard()
        board.power_on()
        hv = Hypervisor(board, contains_guest_faults=True)
        hv.enable(bananapi_system_config())
        cell = started_inmate(hv)
        context = make_trap_context(hv, 1, TrapCode.PREFETCH_ABORT)
        result = hv.handlers.arch_handle_trap(
            board.cpu(1), context, fault_address=0xDEAD_0000
        )
        assert result is TrapResult.UNHANDLED_PARKED
        assert not hv.panicked
        assert cell.state.value == "failed"
        assert board.cpu(0).is_executing

    def test_escalation_policy_turns_parks_into_panics(self):
        board = BananaPiBoard()
        board.power_on()
        hv = Hypervisor(board, escalate_parks_to_panic=True)
        hv.enable(bananapi_system_config())
        started_inmate(hv)
        context = make_trap_context(hv, 1, TrapCode.DATA_ABORT)
        hv.handlers.arch_handle_trap(board.cpu(1), context,
                                     fault_address=0xDEAD_0000)
        assert hv.panicked


class TestPsciAndBringUp:
    def test_cpu_on_with_invalid_entry_fails_to_come_online(self, hv: Hypervisor):
        address = hv.stage_config(freertos_cell_config())
        create = hv.issue_hypercall(0, int(Hypercall.CELL_CREATE), address)
        cell = hv.cell_by_id(create.code)
        cell.load_image(LoadedImage("ram", entry_point=0xDEAD_0000, size=4096))
        start = hv.issue_hypercall(0, int(Hypercall.CELL_START), create.code)
        assert start.ok                       # Jailhouse reports success anyway
        assert cell.state.is_running
        assert not cell.online_cpus           # ... but the CPU never came up
        assert not cell.is_consistent()
        assert hv.events_of_kind(HypervisorEventKind.CPU_ONLINE_FAILED)

    def test_corrupting_the_bringup_context_leaves_cell_inconsistent(self, hv: Hypervisor):
        # Install a hook corrupting the PSCI entry-point register on CPU 1,
        # mimicking the paper's high-intensity non-root finding.
        def corrupt(name, cpu, context):
            if cpu.cpu_id == 1:
                context.write(Register.R2, 0xFFF0_0000)

        hv.handlers.add_entry_hook(HANDLER_TRAP, corrupt)
        address = hv.stage_config(freertos_cell_config())
        create = hv.issue_hypercall(0, int(Hypercall.CELL_CREATE), address)
        cell = hv.cell_by_id(create.code)
        cell.load_image(LoadedImage("ram", entry_point=0x0, size=4096))
        start = hv.issue_hypercall(0, int(Hypercall.CELL_START), create.code)
        assert start.ok
        assert cell.state.is_running and not cell.online_cpus

    def test_psci_cpu_off_takes_the_core_offline(self, hv: Hypervisor):
        cell = started_inmate(hv)
        cpu = hv.board.cpu(1)
        cpu.registers.write(Register.R0, 0x8400_0002)   # PSCI_CPU_OFF
        context = cpu.enter_trap("smc", encode_hsr(TrapCode.SMC))
        result = hv.handlers.arch_handle_trap(cpu, context)
        assert result is TrapResult.HANDLED
        assert cpu.state is CpuState.OFFLINE
        assert 1 not in cell.online_cpus

    def test_unknown_smc_returns_not_supported(self, hv: Hypervisor):
        started_inmate(hv)
        cpu = hv.board.cpu(1)
        cpu.registers.write(Register.R0, 0x1234_5678)
        context = cpu.enter_trap("smc", encode_hsr(TrapCode.SMC))
        result = hv.handlers.arch_handle_trap(cpu, context)
        assert result is TrapResult.HANDLED
        assert context.read(Register.R0) == 0xFFFF_FFFF


class TestIrqchip:
    def test_pending_timer_interrupt_is_routed_to_the_owning_cell(self, hv: Hypervisor):
        cell = started_inmate(hv)
        hv.board.advance(0.02)                 # raise timer PPIs
        cpu = hv.board.cpu(1)
        context = cpu.enter_trap("irq", 0)
        result = hv.handlers.irqchip_handle_irq(cpu, context)
        assert result is TrapResult.HANDLED
        assert cell.stats.interrupts >= 1
        assert not hv.board.gic.has_pending(1)

    def test_spurious_wakeup_with_nothing_pending(self, hv: Hypervisor):
        cpu = hv.board.cpu(0)
        context = cpu.enter_trap("irq", 0)
        result = hv.handlers.irqchip_handle_irq(cpu, context)
        assert result is TrapResult.HANDLED

    def test_unowned_spi_is_reported_as_spurious(self, hv: Hypervisor):
        hv.board.gic.enable_irq(120, targets={0})
        hv.root_cell.irqs.discard(120)
        hv.board.gic.raise_irq(120)
        cpu = hv.board.cpu(0)
        context = cpu.enter_trap("irq", 0)
        hv.handlers.irqchip_handle_irq(cpu, context)
        assert any("Spurious" in line for line in hv.board.uart.lines("hypervisor"))
