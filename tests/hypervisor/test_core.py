"""Tests for the hypervisor core: lifecycle, hypercall dispatch, failure reactions."""

import pytest

from repro.errors import HypervisorError
from repro.hw.board import BananaPiBoard
from repro.hw.cpu import CpuState
from repro.hypervisor.cell import CellState, LoadedImage
from repro.hypervisor.config import bananapi_system_config, freertos_cell_config
from repro.hypervisor.core import (
    Hypervisor,
    HypervisorEventKind,
    HypervisorState,
)
from repro.hypervisor.hypercalls import Hypercall, HypercallRequest, ReturnCode


def enabled_hypervisor() -> Hypervisor:
    board = BananaPiBoard()
    board.power_on()
    hv = Hypervisor(board)
    hv.enable(bananapi_system_config())
    return hv


def create_and_start_inmate(hv: Hypervisor):
    """Create, load and start the FreeRTOS cell through real hypercalls."""
    config = freertos_cell_config()
    address = hv.stage_config(config)
    create = hv.issue_hypercall(0, int(Hypercall.CELL_CREATE), address)
    assert create.ok
    cell = hv.cell_by_id(create.code)
    cell.load_image(LoadedImage("ram", entry_point=0x0, size=4096))
    start = hv.issue_hypercall(0, int(Hypercall.CELL_START), create.code)
    assert start.ok
    return cell


class TestEnableDisable:
    def test_enable_creates_a_running_root_cell(self):
        hv = enabled_hypervisor()
        assert hv.state is HypervisorState.ENABLED
        assert hv.root_cell is not None
        assert hv.root_cell.state is CellState.RUNNING
        assert hv.root_cell.cpus == {0, 1}
        assert hv.root_cell.online_cpus == {0, 1}

    def test_enable_twice_is_rejected(self):
        hv = enabled_hypervisor()
        with pytest.raises(HypervisorError):
            hv.enable(bananapi_system_config())

    def test_enable_prints_activation_banner(self):
        hv = enabled_hypervisor()
        lines = hv.board.uart.lines("hypervisor")
        assert any("Initializing Jailhouse" in line for line in lines)

    def test_disable_refused_while_non_root_cells_exist(self):
        hv = enabled_hypervisor()
        create_and_start_inmate(hv)
        with pytest.raises(HypervisorError):
            hv.disable()

    def test_disable_hypercall_once_cells_are_gone(self):
        hv = enabled_hypervisor()
        cell = create_and_start_inmate(hv)
        assert hv.issue_hypercall(0, int(Hypercall.CELL_DESTROY), cell.cell_id).ok
        assert hv.issue_hypercall(0, int(Hypercall.DISABLE)).ok
        assert hv.state is HypervisorState.DISABLED

    def test_hypercalls_after_disable_fail_with_eio(self):
        hv = enabled_hypervisor()
        assert hv.issue_hypercall(0, int(Hypercall.DISABLE)).ok
        outcome = hv.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        assert outcome.code == int(ReturnCode.EIO)


class TestCellCreate:
    def test_create_moves_cpu_from_root_to_new_cell(self):
        hv = enabled_hypervisor()
        cell = create_and_start_inmate(hv)
        assert hv.root_cell.cpus == {0}
        assert cell.cpus == {1}
        assert hv.cell_of_cpu(1) is cell

    def test_create_with_bad_config_address_is_invalid_argument(self):
        hv = enabled_hypervisor()
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_CREATE), 0xDEAD_BEEF)
        assert outcome.code == int(ReturnCode.EINVAL)
        assert hv.cell_by_name("FreeRTOS") is None

    def test_create_duplicate_name_is_rejected(self):
        hv = enabled_hypervisor()
        create_and_start_inmate(hv)
        address = hv.stage_config(freertos_cell_config())
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_CREATE), address)
        assert outcome.code == int(ReturnCode.EEXIST)

    def test_create_requesting_unavailable_cpu_is_rejected(self):
        hv = enabled_hypervisor()
        create_and_start_inmate(hv)                       # takes CPU 1 away
        config = freertos_cell_config("Second")
        address = hv.stage_config(config)
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_CREATE), address)
        assert outcome.code == int(ReturnCode.EINVAL)

    def test_create_from_non_root_cell_is_eperm(self):
        hv = enabled_hypervisor()
        create_and_start_inmate(hv)
        address = hv.stage_config(freertos_cell_config("Another"))
        outcome = hv.issue_hypercall(1, int(Hypercall.CELL_CREATE), address)
        assert outcome.code == int(ReturnCode.EPERM)

    def test_failed_hypercalls_are_recorded_as_events(self):
        hv = enabled_hypervisor()
        hv.issue_hypercall(0, int(Hypercall.CELL_CREATE), 0x1)
        assert hv.events_of_kind(HypervisorEventKind.HYPERCALL_FAILED)


class TestCellStartAndLifecycle:
    def test_start_brings_the_target_cpu_online(self):
        hv = enabled_hypervisor()
        cell = create_and_start_inmate(hv)
        assert cell.state is CellState.RUNNING
        assert cell.online_cpus == {1}
        assert hv.board.cpu(1).is_executing
        assert cell.is_consistent()

    def test_start_unknown_cell_is_enoent(self):
        hv = enabled_hypervisor()
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_START), 99)
        assert outcome.code == int(ReturnCode.ENOENT)

    def test_start_root_cell_is_rejected(self):
        hv = enabled_hypervisor()
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_START), 0)
        assert outcome.code == int(ReturnCode.EINVAL)

    def test_start_twice_is_busy(self):
        hv = enabled_hypervisor()
        cell = create_and_start_inmate(hv)
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_START), cell.cell_id)
        assert outcome.code == int(ReturnCode.EBUSY)

    def test_shutdown_returns_cell_to_shut_down_state(self):
        hv = enabled_hypervisor()
        cell = create_and_start_inmate(hv)
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_SET_LOADABLE), cell.cell_id)
        assert outcome.ok
        assert cell.state is CellState.SHUT_DOWN
        assert not cell.online_cpus

    def test_destroy_returns_cpu_and_irqs_to_root(self):
        hv = enabled_hypervisor()
        cell = create_and_start_inmate(hv)
        irqs_before = set(cell.config.irqs)
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_DESTROY), cell.cell_id)
        assert outcome.ok
        assert hv.cell_by_name("FreeRTOS") is None
        assert hv.root_cell.cpus == {0, 1}
        assert irqs_before <= hv.root_cell.irqs
        assert hv.board.cpu(1).is_executing

    def test_destroy_root_cell_is_rejected(self):
        hv = enabled_hypervisor()
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_DESTROY), 0)
        assert outcome.code == int(ReturnCode.EINVAL)

    def test_state_and_cpu_info_hypercalls(self):
        hv = enabled_hypervisor()
        cell = create_and_start_inmate(hv)
        state = hv.issue_hypercall(0, int(Hypercall.CELL_GET_STATE), cell.cell_id)
        assert state.code == 0          # running
        info = hv.issue_hypercall(0, int(Hypercall.CPU_GET_INFO), 1)
        assert info.code == 0           # online
        bad = hv.issue_hypercall(0, int(Hypercall.CPU_GET_INFO), 9)
        assert bad.code == int(ReturnCode.EINVAL)

    def test_console_putc_hypercall_writes_to_uart(self):
        hv = enabled_hypervisor()
        for char in "hi\n":
            hv.issue_hypercall(0, int(Hypercall.DEBUG_CONSOLE_PUTC), ord(char))
        assert "hi" in hv.board.uart.lines(hv.root_cell.name)

    def test_unknown_hypercall_is_enosys(self):
        hv = enabled_hypervisor()
        outcome = hv.issue_hypercall(0, 0x55)
        assert outcome.code == int(ReturnCode.ENOSYS)

    def test_cell_list_renders_table(self):
        hv = enabled_hypervisor()
        create_and_start_inmate(hv)
        table = hv.cell_list()
        assert "FreeRTOS" in table and "running" in table


class TestFailureReactions:
    def test_cpu_park_keeps_cell_state_running(self):
        # The paper: after a 0x24 park the cell is still considered running by
        # Jailhouse, although its CPU is gone.
        hv = enabled_hypervisor()
        cell = create_and_start_inmate(hv)
        hv.cpu_park(1, "unhandled trap exception", error_code=0x24)
        assert hv.board.cpu(1).is_parked
        assert cell.state is CellState.RUNNING
        assert not cell.is_consistent()
        assert hv.events_of_kind(HypervisorEventKind.CPU_PARKED)

    def test_destroy_after_park_still_returns_resources(self):
        hv = enabled_hypervisor()
        cell = create_and_start_inmate(hv)
        hv.cpu_park(1, "unhandled trap exception", error_code=0x24)
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_DESTROY), cell.cell_id)
        assert outcome.ok
        assert hv.root_cell.cpus == {0, 1}
        assert hv.board.cpu(1).is_executing

    def test_panic_parks_every_online_cpu(self):
        hv = enabled_hypervisor()
        create_and_start_inmate(hv)
        hv.panic("test panic", cpu_id=1)
        assert hv.panicked
        assert hv.panic_reason == "test panic"
        assert all(not cpu.is_executing for cpu in hv.board.cpus)
        lines = hv.board.uart.lines("hypervisor")
        assert any("JAILHOUSE PANIC" in line for line in lines)

    def test_panic_is_idempotent(self):
        hv = enabled_hypervisor()
        hv.panic("first")
        hv.panic("second")
        assert hv.panic_reason == "first"
        assert len(hv.events_of_kind(HypervisorEventKind.PANIC)) == 1

    def test_fail_cell_contains_failure_to_one_cell(self):
        hv = enabled_hypervisor()
        cell = create_and_start_inmate(hv)
        hv.fail_cell(cell, "guest fault", error_code=0x20)
        assert cell.state is CellState.FAILED
        assert hv.board.cpu(1).is_parked
        assert hv.board.cpu(0).is_executing
        assert not hv.panicked
        assert hv.events_of_kind(HypervisorEventKind.CELL_FAILED)

    def test_issue_hypercall_from_parked_cpu_fails_gracefully(self):
        hv = enabled_hypervisor()
        hv.panic("dead")
        outcome = hv.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        assert not outcome.ok
        assert outcome.code == int(ReturnCode.EIO)

    def test_ivshmem_channel_requires_existing_cells(self):
        hv = enabled_hypervisor()
        with pytest.raises(HypervisorError):
            hv.create_ivshmem_channel("BananaPi-Linux", "ghost")
        create_and_start_inmate(hv)
        channel = hv.create_ivshmem_channel("BananaPi-Linux", "FreeRTOS")
        assert channel in hv.ivshmem_channels
