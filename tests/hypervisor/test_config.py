"""Tests for cell and system configurations."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.memory import MemoryFlags
from repro.hypervisor.config import (
    CellConfig,
    ConsoleConfig,
    MemoryAssignment,
    SystemConfig,
    bananapi_root_config,
    bananapi_system_config,
    freertos_cell_config,
)


def simple_cell(name: str = "inmate") -> CellConfig:
    return CellConfig(
        name=name,
        cpus={1},
        memory=[MemoryAssignment("ram", 0x0, 0x7800_0000, 1 << 20, MemoryFlags.RWX)],
        irqs={155},
    )


class TestMemoryAssignment:
    def test_rejects_bad_sizes_and_addresses(self):
        with pytest.raises(ConfigurationError):
            MemoryAssignment("x", 0, 0, 0)
        with pytest.raises(ConfigurationError):
            MemoryAssignment("x", -1, 0, 16)

    def test_overlap_checks(self):
        a = MemoryAssignment("a", 0x0, 0x1000, 0x100)
        b = MemoryAssignment("b", 0x80, 0x2000, 0x100)
        c = MemoryAssignment("c", 0x200, 0x1080, 0x100)
        assert a.overlaps_virt(b)
        assert not a.overlaps_virt(c)
        assert a.overlaps_phys(c)
        assert not a.overlaps_phys(b)


class TestCellConfigValidation:
    def test_valid_config_passes(self):
        simple_cell().validate()

    def test_name_must_be_short_and_non_empty(self):
        with pytest.raises(ConfigurationError):
            CellConfig(name="", cpus={0},
                       memory=[MemoryAssignment("r", 0, 0, 16)]).validate()
        with pytest.raises(ConfigurationError):
            CellConfig(name="x" * 40, cpus={0},
                       memory=[MemoryAssignment("r", 0, 0, 16)]).validate()

    def test_cell_needs_cpus_and_memory(self):
        with pytest.raises(ConfigurationError):
            CellConfig(name="c", cpus=set(),
                       memory=[MemoryAssignment("r", 0, 0, 16)]).validate()
        with pytest.raises(ConfigurationError):
            CellConfig(name="c", cpus={0}, memory=[]).validate()

    def test_negative_cpu_or_irq_ids_are_rejected(self):
        config = simple_cell()
        config.cpus = {-1}
        with pytest.raises(ConfigurationError):
            config.validate()
        config = simple_cell()
        config.irqs = {-3}
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_overlapping_guest_regions_are_rejected(self):
        config = simple_cell()
        config.memory.append(
            MemoryAssignment("clash", 0x0, 0x9000_0000, 0x1000)
        )
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_ram_helpers(self):
        config = freertos_cell_config()
        ram_names = {assignment.name for assignment in config.ram_assignments()}
        assert "ram" in ram_names
        assert "uart0" not in ram_names
        assert config.total_ram() >= 1 << 20
        assert config.find_assignment("ram") is not None
        assert config.find_assignment("nope") is None


class TestSerialization:
    def test_round_trip_preserves_structure(self):
        original = freertos_cell_config()
        restored = CellConfig.from_bytes(original.to_bytes())
        assert restored.name == original.name
        assert restored.cpus == original.cpus
        assert restored.irqs == original.irqs
        assert len(restored.memory) == len(original.memory)
        for before, after in zip(original.memory, restored.memory):
            assert after.name == before.name
            assert after.virt_start == before.virt_start
            assert after.phys_start == before.phys_start
            assert after.size == before.size
            assert after.flags == before.flags
            assert after.shared == before.shared
            assert after.loadable == before.loadable

    def test_bad_magic_is_rejected(self):
        blob = bytearray(freertos_cell_config().to_bytes())
        blob[0:6] = b"BOGUS!"
        with pytest.raises(ConfigurationError):
            CellConfig.from_bytes(bytes(blob))

    def test_truncated_blob_is_rejected(self):
        with pytest.raises(ConfigurationError):
            CellConfig.from_bytes(b"\x00" * 8)

    def test_wrong_revision_is_rejected(self):
        blob = bytearray(freertos_cell_config().to_bytes())
        blob[6] = 0xFF
        with pytest.raises(ConfigurationError):
            CellConfig.from_bytes(bytes(blob))


class TestCanonicalConfigs:
    def test_root_cell_owns_both_cpus_and_is_root(self):
        root = bananapi_root_config()
        assert root.is_root
        assert root.cpus == {0, 1}

    def test_freertos_cell_matches_the_paper_assignment(self):
        # "We statically assigned the board CPU core 0 to the root cell and
        #  the CPU core 1 to the non-root cell (FreeRTOS cell)."
        inmate = freertos_cell_config()
        assert inmate.cpus == {1}
        assert not inmate.is_root
        assert inmate.console.enabled

    def test_cells_share_only_explicitly_shared_regions(self):
        root = bananapi_root_config()
        inmate = freertos_cell_config()
        for root_region in root.memory:
            for inmate_region in inmate.memory:
                if root_region.overlaps_phys(inmate_region):
                    assert root_region.shared and inmate_region.shared

    def test_system_config_validates(self):
        system = bananapi_system_config()
        system.validate()
        assert system.root_cell.is_root

    def test_system_config_requires_a_root_cell(self):
        system = SystemConfig(root_cell=simple_cell())
        with pytest.raises(ConfigurationError):
            system.validate()

    def test_root_cell_must_not_overlap_hypervisor_memory(self):
        root = bananapi_root_config()
        root.memory.append(
            MemoryAssignment("bad", 0x7C00_0000, 0x7C00_0000, 0x1000)
        )
        system = SystemConfig(root_cell=root)
        with pytest.raises(ConfigurationError):
            system.validate()
