"""Tests for stage-2 paging, the cell state machine, and ivshmem."""

import pytest

from repro.errors import CellStateError, ConfigurationError, HypervisorError, IsolationViolationError
from repro.hw.gic import Gic
from repro.hw.memory import AccessType, MemoryFlags
from repro.hypervisor.cell import Cell, CellState, LoadedImage
from repro.hypervisor.config import MemoryAssignment, freertos_cell_config
from repro.hypervisor.ivshmem import IvshmemChannel
from repro.hypervisor.paging import (
    CellMemoryMap,
    Stage2Mapping,
    check_host_exclusivity,
)


def make_map(name: str = "cell", base: int = 0x7800_0000,
             shared: bool = False) -> CellMemoryMap:
    return CellMemoryMap(
        name,
        [
            Stage2Mapping("ram", 0x0, base, 1 << 20, MemoryFlags.RWX),
            Stage2Mapping("shm", 0x3000_0000, 0x7BF0_0000, 0x10_0000,
                          MemoryFlags.RW, shared=shared),
        ],
    )


class TestStage2:
    def test_translate_applies_offset(self):
        mapping = Stage2Mapping("ram", 0x0, 0x7800_0000, 0x1000, MemoryFlags.RWX)
        assert mapping.translate(0x100) == 0x7800_0100

    def test_translate_outside_mapping_raises(self):
        mapping = Stage2Mapping("ram", 0x0, 0x7800_0000, 0x1000, MemoryFlags.RWX)
        with pytest.raises(IsolationViolationError):
            mapping.translate(0x2000)

    def test_from_assignment_copies_fields(self):
        assignment = MemoryAssignment("ram", 0x10, 0x20, 0x30,
                                      MemoryFlags.RW, shared=True)
        mapping = Stage2Mapping.from_assignment(assignment)
        assert (mapping.virt_start, mapping.phys_start, mapping.size) == (0x10, 0x20, 0x30)
        assert mapping.shared

    def test_overlapping_mappings_rejected(self):
        cell_map = make_map()
        with pytest.raises(ConfigurationError):
            cell_map.add(Stage2Mapping("dup", 0x800, 0x9000_0000, 0x1000,
                                       MemoryFlags.RW))

    def test_is_mapped_checks_permissions(self):
        cell_map = make_map()
        assert cell_map.is_mapped(0x100, 4, AccessType.WRITE)
        assert cell_map.is_executable(0x100)
        assert not cell_map.is_executable(0x3000_0000)   # shm is not executable
        assert not cell_map.is_mapped(0x5000_0000, 4)

    def test_translate_through_the_map(self):
        cell_map = make_map()
        assert cell_map.translate(0x10) == 0x7800_0010
        with pytest.raises(IsolationViolationError):
            cell_map.translate(0xFFFF_0000)

    def test_ram_and_io_mapping_views(self):
        cell_map = CellMemoryMap.from_assignments("c", freertos_cell_config().memory)
        assert any(m.name == "uart0" for m in cell_map.io_mappings())
        assert all(not (m.flags & MemoryFlags.IO) for m in cell_map.ram_mappings())

    def test_remove_mapping(self):
        cell_map = make_map()
        cell_map.remove("shm")
        assert cell_map.find_by_name("shm") is None
        with pytest.raises(KeyError):
            cell_map.remove("shm")

    def test_host_exclusivity_accepts_disjoint_cells(self):
        check_host_exclusivity([make_map("a", 0x7800_0000, shared=True),
                                make_map("b", 0x7900_0000, shared=True)])

    def test_host_exclusivity_rejects_unshared_overlap(self):
        with pytest.raises(IsolationViolationError):
            check_host_exclusivity([make_map("a", 0x7800_0000),
                                    make_map("b", 0x7800_0000)])

    def test_host_exclusivity_allows_mutually_shared_overlap(self):
        check_host_exclusivity([make_map("a", 0x7800_0000, shared=True),
                                make_map("b", 0x7900_0000, shared=True)])


class TestCellStateMachine:
    def make_cell(self) -> Cell:
        return Cell(1, freertos_cell_config())

    def test_new_cell_is_shut_down(self):
        cell = self.make_cell()
        assert cell.state is CellState.SHUT_DOWN
        assert not cell.state.is_running
        assert cell.is_consistent()

    def test_mark_running_and_double_start_rejected(self):
        cell = self.make_cell()
        cell.mark_running()
        assert cell.state.is_running
        with pytest.raises(CellStateError):
            cell.mark_running()

    def test_state_history_tracks_transitions(self):
        cell = self.make_cell()
        cell.mark_running()
        cell.mark_shut_down()
        assert cell.state_history == [
            CellState.SHUT_DOWN, CellState.RUNNING, CellState.SHUT_DOWN,
        ]
        assert cell.stats.state_transitions == 2

    def test_load_image_into_loadable_region(self):
        cell = self.make_cell()
        cell.load_image(LoadedImage("ram", entry_point=0x0, size=4096))
        assert cell.entry_point() == 0x0

    def test_load_rejects_running_cell(self):
        cell = self.make_cell()
        cell.mark_running()
        with pytest.raises(CellStateError):
            cell.load_image(LoadedImage("ram", 0x0, 4096))

    def test_load_rejects_unknown_or_non_loadable_region(self):
        cell = self.make_cell()
        with pytest.raises(CellStateError):
            cell.load_image(LoadedImage("ghost", 0x0, 16))
        with pytest.raises(CellStateError):
            cell.load_image(LoadedImage("uart0", 0x0, 16))

    def test_load_rejects_oversized_image(self):
        cell = self.make_cell()
        with pytest.raises(CellStateError):
            cell.load_image(LoadedImage("ram", 0x0, 10 << 20))

    def test_cpu_online_tracking_and_consistency(self):
        cell = self.make_cell()
        cell.mark_running()
        assert not cell.is_consistent()     # running with no online CPUs
        cell.cpu_online(1)
        assert cell.is_consistent()
        cell.cpu_offline(1)
        assert not cell.is_consistent()

    def test_cpu_online_rejects_foreign_cpu(self):
        with pytest.raises(CellStateError):
            self.make_cell().cpu_online(0)

    def test_shut_down_clears_online_cpus(self):
        cell = self.make_cell()
        cell.mark_running()
        cell.cpu_online(1)
        cell.mark_shut_down()
        assert not cell.online_cpus
        assert cell.is_consistent()

    def test_describe_lists_name_state_cpus(self):
        text = self.make_cell().describe()
        assert "FreeRTOS" in text
        assert "shut down" in text
        assert "1" in text


class TestIvshmem:
    def make_channel(self, gic: Gic | None = None) -> IvshmemChannel:
        return IvshmemChannel("chan", "root", "inmate", capacity=2,
                              doorbell_irq=155, gic=gic)

    def test_peers_must_differ_and_capacity_positive(self):
        with pytest.raises(HypervisorError):
            IvshmemChannel("x", "a", "a")
        with pytest.raises(HypervisorError):
            IvshmemChannel("x", "a", "b", capacity=0)

    def test_send_receive_fifo_order(self):
        channel = self.make_channel()
        channel.send("root", b"one")
        channel.send("root", b"two")
        first = channel.receive("inmate")
        second = channel.receive("inmate")
        assert (first.payload, second.payload) == (b"one", b"two")
        assert first.sequence < second.sequence
        assert channel.receive("inmate") is None

    def test_capacity_limit_drops_excess_messages(self):
        channel = self.make_channel()
        assert channel.send("root", b"1")
        assert channel.send("root", b"2")
        assert not channel.send("root", b"3")
        assert channel.dropped == 1
        assert channel.pending("inmate") == 2

    def test_non_peer_access_is_rejected(self):
        channel = self.make_channel()
        with pytest.raises(HypervisorError):
            channel.send("stranger", b"x")
        with pytest.raises(HypervisorError):
            channel.receive("stranger")

    def test_doorbell_raises_irq_for_configured_target(self):
        gic = Gic(2)
        gic.enable_irq(155, targets={1})
        channel = self.make_channel(gic)
        channel.set_doorbell_target("inmate", 1)
        channel.send("root", b"ping")
        assert 155 in gic.pending_for(1)

    def test_other_peer_resolution(self):
        channel = self.make_channel()
        assert channel.other_peer("root") == "inmate"
        assert channel.other_peer("inmate") == "root"

    def test_reset_clears_pending_messages(self):
        channel = self.make_channel()
        channel.send("root", b"x")
        channel.reset()
        assert channel.pending("inmate") == 0
