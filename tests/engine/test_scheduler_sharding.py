"""Tests for deterministic sharding and work-queue construction."""

import dataclasses

import pytest

from repro.core.plan import TestPlan, paper_figure3_plan
from repro.engine.scheduler import (
    build_work_queue,
    group_by_prefix,
    shard_families,
    shard_for_pool,
    shard_work,
    suggest_chunk_size,
)
from repro.errors import CampaignError


@pytest.fixture
def plan():
    return paper_figure3_plan(num_tests=10, duration=2.0)


class TestWorkQueue:
    def test_queue_preserves_plan_order_and_indices(self, plan):
        queue = build_work_queue(plan)
        assert [item.index for item in queue] == list(range(10))
        assert [item.spec.name for item in queue] == [s.name for s in plan]

    def test_skip_indices_are_left_out(self, plan):
        queue = build_work_queue(plan, skip_indices={0, 3, 9})
        assert [item.index for item in queue] == [1, 2, 4, 5, 6, 7, 8]


class TestSharding:
    def test_round_robin_is_deterministic_and_complete(self, plan):
        queue = build_work_queue(plan)
        shards_a = shard_work(queue, 3)
        shards_b = shard_work(queue, 3)
        assert shards_a == shards_b
        covered = sorted(
            item.index for shard in shards_a for item in shard.items
        )
        assert covered == list(range(10))
        # Round-robin: item i lands in shard i % 3.
        assert [item.index for item in shards_a[0].items] == [0, 3, 6, 9]
        assert [item.index for item in shards_a[1].items] == [1, 4, 7]

    def test_shard_sizes_are_balanced(self, plan):
        shards = shard_work(build_work_queue(plan), 4)
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_items_clamps(self, plan):
        shards = shard_work(build_work_queue(plan)[:2], 8)
        assert len(shards) == 2

    def test_invalid_shard_count_is_rejected(self, plan):
        with pytest.raises(CampaignError):
            shard_work(build_work_queue(plan), 0)


class TestPoolSharding:
    def test_pool_shards_are_balanced_and_cover_everything(self, plan):
        queue = build_work_queue(plan)
        shards = shard_for_pool(queue, 3)
        # ceil(10 / 3) = 4 round-robin tasks of balanced size.
        assert [len(shard) for shard in shards] == [3, 3, 2, 2]
        covered = sorted(item.index for shard in shards for item in shard.items)
        assert covered == list(range(10))

    def test_pool_sharding_is_deterministic(self, plan):
        queue = build_work_queue(plan)
        assert shard_for_pool(queue, 3) == shard_for_pool(queue, 3)

    def test_empty_queue_yields_no_shards(self):
        assert shard_for_pool([], 4) == []

    def test_invalid_chunk_size_is_rejected(self, plan):
        with pytest.raises(CampaignError):
            shard_for_pool(build_work_queue(plan), 0)

    def test_suggested_chunk_size_stays_fine_grained(self):
        assert suggest_chunk_size(10, 4) == 1
        assert suggest_chunk_size(0, 4) == 1
        assert suggest_chunk_size(10_000, 4) == 8   # capped for checkpointing
        assert suggest_chunk_size(64, 2) == 8


def _one_family_plan(variants: int) -> TestPlan:
    """A plan whose specs all share one pre-injection prefix (same seed)."""
    base = paper_figure3_plan(num_tests=1, duration=2.0).specs[0]
    plan = TestPlan(name="one-family")
    for index in range(variants):
        plan.add(dataclasses.replace(base, name=f"variant-{index:04d}"))
    return plan


class TestFamilySharding:
    def test_empty_campaign_yields_no_shards(self):
        assert group_by_prefix([]) == []
        assert shard_families([], 1) == []
        assert shard_families([], 4, min_shards=8) == []

    def test_single_family_larger_than_chunk_stays_whole(self):
        queue = build_work_queue(_one_family_plan(6))
        families = group_by_prefix(queue)
        assert len(families) == 1
        # chunk_size merges small families; it never splits one, because a
        # split slice re-pays the family's prefix. Only min_shards does that.
        shards = shard_families(families, 2, min_shards=1)
        assert len(shards) == 1
        assert [item.index for item in shards[0].items] == list(range(6))

    def test_all_cold_boot_specs_become_singleton_shards(self):
        plan = _one_family_plan(5)
        plan.specs = [dataclasses.replace(spec, cold_boot=True)
                      for spec in plan.specs]
        queue = build_work_queue(plan)
        families = group_by_prefix(queue)
        # Cold-boot opt-outs never share snapshots: one family per item.
        assert [len(family) for family in families] == [1] * 5
        shards = shard_families(families, 1)
        assert [len(shard) for shard in shards] == [1] * 5
        covered = sorted(item.index for shard in shards
                         for item in shard.items)
        assert covered == list(range(5))

    def test_min_shards_bisects_when_families_are_scarce(self):
        queue = build_work_queue(_one_family_plan(8))
        families = group_by_prefix(queue)
        shards = shard_families(families, 1, min_shards=4)
        # One 8-variant family, four workers: bisected into four slices so
        # nobody idles; each slice keeps queue order and covers everything.
        assert len(shards) == 4
        assert [len(shard) for shard in shards] == [2, 2, 2, 2]
        covered = sorted(item.index for shard in shards
                         for item in shard.items)
        assert covered == list(range(8))
        for shard in shards:
            indices = [item.index for item in shard.items]
            assert indices == sorted(indices)

    def test_min_shards_stops_at_singleton_tasks(self):
        plan = paper_figure3_plan(num_tests=2, duration=2.0)
        families = group_by_prefix(build_work_queue(plan))
        # Two singleton families cannot be split further than two shards, no
        # matter how many workers are waiting.
        shards = shard_families(families, 1, min_shards=8)
        assert len(shards) == 2
