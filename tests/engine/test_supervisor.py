"""Supervision layer: timeouts, retries, quarantine, worker liveness.

Covers both supervision backends — the serial ``SIGALRM`` path and the
:class:`~repro.engine.supervisor.SupervisedPool` — plus the policy and
quarantine-log plumbing around them. The scenarios injected here are the
infrastructure faults the layer exists for: specs that hang forever, specs
that raise, and specs that SIGKILL their own worker process.
"""

import os
import signal
import time

import pytest

from repro.core.campaign import Campaign
from repro.core.outcomes import Outcome
from repro.core.plan import paper_figure3_plan
from repro.core.registry import RegistrySutFactory
from repro.engine.quarantine import QuarantineLog, default_quarantine_path
from repro.engine.scheduler import build_work_queue
from repro.engine.supervisor import RunPolicy, infra_result
from repro.engine.workers import execute_pool, execute_serial
from repro.errors import CampaignError


def fast_policy(**overrides) -> RunPolicy:
    """A RunPolicy with test-friendly backoffs (keeps retries sub-second)."""
    defaults = dict(retries=1, backoff_s=0.01, backoff_cap_s=0.05,
                    poll_s=0.02, shutdown_grace_s=2.0)
    defaults.update(overrides)
    return RunPolicy(**defaults)


class EventRecorder:
    def __init__(self):
        self.events = []

    def __call__(self, kind, **payload):
        self.events.append((kind, payload))

    def kinds(self):
        return [kind for kind, _ in self.events]


class FaultyFactory:
    """Delegates to the real jailhouse factory, misbehaving on chosen seeds.

    ``mode`` per seed: ``"raise"`` raises RuntimeError every call,
    ``"hang"`` sleeps far past any test timeout, ``"kill"`` SIGKILLs its own
    process. Picklable (plain attributes) so it crosses into pool workers
    under any start method.
    """

    def __init__(self, modes):
        self.modes = dict(modes)
        self.base = RegistrySutFactory("jailhouse")

    def __call__(self, seed):
        mode = self.modes.get(seed)
        if mode == "raise":
            raise RuntimeError(f"synthetic fault for seed {seed}")
        if mode == "hang":
            time.sleep(300)
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        return self.base(seed)


class FlakyOnceFactory:
    """Raises on the first call for each marked seed, then behaves."""

    def __init__(self, seeds):
        self.remaining = set(seeds)
        self.base = RegistrySutFactory("jailhouse")

    def __call__(self, seed):
        if seed in self.remaining:
            self.remaining.remove(seed)
            raise RuntimeError(f"transient fault for seed {seed}")
        return self.base(seed)


@pytest.fixture
def plan():
    return paper_figure3_plan(num_tests=4, duration=1.0)


@pytest.fixture
def queue(plan):
    return build_work_queue(plan)


class TestRunPolicy:
    def test_defaults_validate(self):
        RunPolicy().validate()

    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0.0},
        {"timeout_s": -1.0},
        {"retries": -1},
        {"max_worker_restarts": -1},
        {"backoff_s": -0.1},
    ])
    def test_invalid_values_are_rejected(self, kwargs):
        with pytest.raises(CampaignError):
            RunPolicy(**kwargs).validate()


class TestInfraResult:
    def test_carries_identity_and_blame(self, plan):
        spec = plan.specs[0]
        result = infra_result(spec, Outcome.INFRA_TIMEOUT, attempts=3,
                              error="hung")
        assert result.spec_name == spec.name
        assert result.seed == spec.seed
        assert result.outcome is Outcome.INFRA_TIMEOUT
        assert result.injections == 0
        assert result.extras["quarantined"] is True
        assert result.extras["infra_attempts"] == 3

    def test_rejects_simulation_outcomes(self, plan):
        with pytest.raises(CampaignError):
            infra_result(plan.specs[0], Outcome.CORRECT, attempts=1,
                         error="nope")


class TestSerialSupervision:
    def test_hang_times_out_and_quarantines(self, queue):
        events = EventRecorder()
        factory = FaultyFactory({queue[1].spec.seed: "hang"})
        results = dict(execute_serial(
            queue, factory, policy=fast_policy(timeout_s=0.2, retries=1),
            on_event=events))
        assert results[1].outcome is Outcome.INFRA_TIMEOUT
        assert results[1].extras["infra_attempts"] == 2
        assert all(not results[i].outcome.is_infrastructure
                   for i in (0, 2, 3))
        assert events.kinds() == ["experiment_timeout", "experiment_retry",
                                  "experiment_timeout", "spec_quarantined"]

    def test_persistent_error_quarantines_as_crash(self, queue):
        events = EventRecorder()
        factory = FaultyFactory({queue[0].spec.seed: "raise"})
        results = dict(execute_serial(
            queue, factory, policy=fast_policy(retries=2), on_event=events))
        assert results[0].outcome is Outcome.INFRA_CRASH
        assert "RuntimeError" in results[0].extras["infra_error"]
        assert events.kinds() == ["experiment_retry", "experiment_retry",
                                  "spec_quarantined"]
        kind, payload = events.events[-1]
        assert payload["spec"] == queue[0].spec.name
        assert payload["attempts"] == 3
        assert payload["spec_id"] == queue[0].spec.identity()

    def test_transient_error_retries_to_the_clean_result(self, queue):
        clean = dict(execute_serial(queue, RegistrySutFactory("jailhouse")))
        events = EventRecorder()
        factory = FlakyOnceFactory([queue[2].spec.seed])
        retried = dict(execute_serial(
            queue, factory, policy=fast_policy(retries=1), on_event=events))
        assert events.kinds() == ["experiment_retry"]
        # The retry re-runs with the original seed: bit-identical outcome.
        assert {i: r.outcome for i, r in retried.items()} == \
               {i: r.outcome for i, r in clean.items()}
        assert retried[2].injections == clean[2].injections

    def test_fail_fast_propagates_the_original_exception(self, queue):
        factory = FaultyFactory({queue[0].spec.seed: "raise"})
        with pytest.raises(RuntimeError):
            list(execute_serial(queue, factory,
                                policy=fast_policy(retries=0, fail_fast=True)))

    def test_no_policy_keeps_the_historical_contract(self, queue):
        factory = FaultyFactory({queue[0].spec.seed: "raise"})
        with pytest.raises(RuntimeError):
            list(execute_serial(queue, factory))


class TestPoolSupervision:
    def test_worker_crash_is_retried_then_quarantined(self, queue):
        events = EventRecorder()
        factory = FaultyFactory({queue[1].spec.seed: "kill"})
        results = dict(execute_pool(
            queue, jobs=2, sut_factory=factory,
            policy=fast_policy(retries=1), on_event=events))
        assert len(results) == 4
        assert results[1].outcome is Outcome.INFRA_CRASH
        assert all(not results[i].outcome.is_infrastructure
                   for i in (0, 2, 3))
        kinds = events.kinds()
        assert kinds.count("worker_crash") == 2       # initial + retry
        assert kinds.count("experiment_retry") == 1
        assert kinds.count("spec_quarantined") == 1
        assert kinds.count("worker_respawn") == 2

    def test_hang_is_killed_by_the_watchdog(self, queue):
        events = EventRecorder()
        factory = FaultyFactory({queue[0].spec.seed: "hang"})
        started = time.monotonic()
        results = dict(execute_pool(
            queue, jobs=2, sut_factory=factory,
            policy=fast_policy(timeout_s=0.5, retries=0), on_event=events))
        assert time.monotonic() - started < 30
        assert results[0].outcome is Outcome.INFRA_TIMEOUT
        kinds = events.kinds()
        assert "experiment_timeout" in kinds
        # A deliberate timeout kill is not a crash and always respawns.
        assert "worker_crash" not in kinds
        assert "worker_respawn" in kinds

    def test_exhausted_restart_budget_aborts(self, queue):
        factory = FaultyFactory(
            {item.spec.seed: "kill" for item in queue})
        with pytest.raises(CampaignError, match="respawn budget"):
            list(execute_pool(
                queue, jobs=2, sut_factory=factory,
                policy=fast_policy(retries=0, max_worker_restarts=0)))

    def test_legacy_path_survives_worker_death(self, queue):
        # No policy: exceptions would propagate, but a SIGKILLed worker --
        # which used to wedge the bare multiprocessing.Pool forever -- is
        # respawned and the campaign aborts with a diagnosable error.
        factory = FaultyFactory({queue[2].spec.seed: "kill"})
        with pytest.raises(CampaignError, match="died"):
            list(execute_pool(queue, jobs=2, sut_factory=factory))

    def test_legacy_path_propagates_worker_exceptions(self, queue):
        factory = FaultyFactory({queue[0].spec.seed: "raise"})
        with pytest.raises(RuntimeError, match="synthetic fault"):
            list(execute_pool(queue, jobs=2, sut_factory=factory))


class TestEngineQuarantineFlow:
    def test_quarantined_spec_is_reoffered_on_resume(self, tmp_path):
        plan = paper_figure3_plan(num_tests=4, duration=1.0)
        checkpoint = tmp_path / "records.jsonl"
        campaign = Campaign(plan)
        bad_seed = plan.specs[2].seed
        campaign.sut_factory = FaultyFactory({bad_seed: "raise"})
        result = campaign.run(jobs=1, checkpoint_path=str(checkpoint),
                              resume=True, retries=1)
        assert len(result.results) == 4
        assert [r.spec_name for r in result.quarantined()] == \
               [plan.specs[2].name]

        quarantine_path = default_quarantine_path(checkpoint)
        log = QuarantineLog(quarantine_path)
        entries = log.entries()
        assert [entry["spec"] for entry in entries] == [plan.specs[2].name]
        assert entries[0]["reason"] == "error"

        # The quarantined spec was not checkpointed, so a resumed run with a
        # healthy factory re-offers and re-executes exactly that spec.
        campaign.sut_factory = RegistrySutFactory("jailhouse")
        resumed = campaign.run(jobs=1, checkpoint_path=str(checkpoint),
                               resume=True, retries=1)
        assert len(resumed.results) == 4
        assert resumed.quarantined() == []
        assert QuarantineLog(quarantine_path).entries() == []

    def test_quarantine_log_reoffer_is_selective(self, tmp_path):
        plan = paper_figure3_plan(num_tests=2, duration=1.0)
        log = QuarantineLog(tmp_path / "q.jsonl")
        log.append(spec=plan.specs[0].name, spec_id=plan.specs[0].identity(),
                   seed=plan.specs[0].seed, scenario="steady-state",
                   attempts=2, reason="crash", error="boom")
        log.append(spec="someone-else", spec_id="not-in-this-plan",
                   seed=99, scenario="steady-state",
                   attempts=1, reason="timeout", error="hung")
        assert log.reoffer(plan) == 1
        remaining = log.entries()
        assert [entry["spec"] for entry in remaining] == ["someone-else"]

    def test_quarantine_log_skips_torn_lines(self, tmp_path):
        path = tmp_path / "q.jsonl"
        log = QuarantineLog(path)
        log.append(spec="a", spec_id="id-a", seed=1, scenario="s",
                   attempts=1, reason="crash", error="x")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        assert [entry["spec"] for entry in log.entries()] == ["a"]
