"""Batched lockstep core: records must be byte-identical to scalar runs.

The contract of :mod:`repro.engine.batch` is *eviction, not emulation*: all
lanes of a steady-state prefix family advance on one shared simulation until
a lane's injector fires, and that lane is then replayed scalar from the last
sync boundary. Because the replay is a real scalar execution (same seed,
same injector state, same boundary snapshot), every persisted record —
outcome, injection count, availability lines, everything — must match what
scalar execution produces, byte for byte, for every campaign shape: the
whole paper catalog, grids with forced mid-batch evictions, and every
engine composition (pooling, prefix cache, jobs, supervision, resume).
"""

import json

import pytest

from repro.core.campaign import Campaign
from repro.core.config import (
    CampaignConfig,
    PartRef,
    catalog_config,
    catalog_keys,
)
from repro.engine.batch import (
    BatchDivergenceError,
    BatchStepper,
    batchable_spec,
    supports_batching,
)
from repro.engine.scheduler import WorkItem, plan_family_batches
from repro.errors import CampaignError


def _campaign_for(config: CampaignConfig) -> Campaign:
    return Campaign(config.compile(), sut_factory=config.sut_factory(),
                    classifier=config.build_classifier())


def _record_lines(result) -> list:
    return [record.to_json() for record in result.to_records()]


def _evicting_grid(tests: int = 3, duration: float = 2.0) -> CampaignConfig:
    """A family grid whose fast triggers force every lane to evict."""
    return CampaignConfig(
        name="batch-evict-grid",
        targets=[PartRef("nonroot-trap"), PartRef("hvc+trap", {"cpus": [1]})],
        triggers=[PartRef("every-n-calls", {"n": 5}, tag="fast"),
                  PartRef("every-n-calls", {"n": 10}, tag="mid")],
        fault_models=[PartRef("single-bit-flip")],
        scenarios=["steady-state"],
        intensity="custom",
        tests=tests,
        duration=duration,
    )


def _mixed_grid() -> CampaignConfig:
    """Some lanes evict mid-batch, some stay in lockstep to the end."""
    return CampaignConfig(
        name="batch-mixed-grid",
        targets=[PartRef("nonroot-trap"), PartRef("hvc+trap", {"cpus": [1]})],
        triggers=[PartRef("every-n-calls", {"n": 8}, tag="early"),
                  PartRef("one-shot", {"n": 10 ** 7}, tag="never")],
        fault_models=[PartRef("single-bit-flip")],
        scenarios=["steady-state"],
        intensity="custom",
        tests=2,
        duration=2.0,
    )


class TestCatalogParity:
    """Every paper campaign: batch on == batch off, record for record."""

    @pytest.mark.parametrize("key", catalog_keys())
    def test_batched_records_match_scalar(self, key):
        config = catalog_config(key, num_tests=3, duration=2.0)
        campaign = _campaign_for(config)
        scalar = campaign.run(jobs=1)
        batched = campaign.run(jobs=1, batch=True, batch_size=4)
        assert _record_lines(batched) == _record_lines(scalar)
        stats = batched.batch_stats()
        assert stats["batched"] + stats["scalar"] == len(batched)

    def test_spec_identities_are_untouched_by_batching(self):
        # The batch layer is pure execution strategy: identity() (and with
        # it checkpoint compatibility) must not depend on it.
        config = catalog_config("fig3", num_tests=3, duration=1.0)
        identities = [spec.identity() for spec in config.compile()]
        campaign = _campaign_for(config)
        campaign.run(jobs=1, batch=True)
        assert [spec.identity() for spec in config.compile()] == identities


class TestForcedEvictions:
    def test_every_lane_evicting_still_matches_scalar(self):
        campaign = _campaign_for(_evicting_grid())
        scalar = campaign.run(jobs=1)
        batched = campaign.run(jobs=1, batch=True)
        assert _record_lines(batched) == _record_lines(scalar)
        stats = batched.batch_stats()
        assert stats["batched"] == len(batched)
        assert stats["evicted"] == len(batched)      # fast triggers all fire

    def test_mixed_eviction_and_lockstep_matches_scalar(self):
        campaign = _campaign_for(_mixed_grid())
        scalar = campaign.run(jobs=1)
        batched = campaign.run(jobs=1, batch=True)
        assert _record_lines(batched) == _record_lines(scalar)
        stats = batched.batch_stats()
        assert 0 < stats["evicted"] < stats["batched"]

    def test_small_batch_size_splits_families(self):
        # batch_size=2 slices each 4-lane family into two batches; records
        # must be independent of how the family was sliced.
        campaign = _campaign_for(_evicting_grid())
        scalar = campaign.run(jobs=1)
        batched = campaign.run(jobs=1, batch=True, batch_size=2)
        assert _record_lines(batched) == _record_lines(scalar)


class TestComposition:
    def test_pool_execution_matches_scalar(self):
        campaign = _campaign_for(_evicting_grid())
        scalar = campaign.run(jobs=1)
        pooled = campaign.run(jobs=2, batch=True)
        assert _record_lines(pooled) == _record_lines(scalar)
        assert pooled.batch_stats()["batched"] > 0

    def test_batch_composes_with_explicit_pooling_and_prefix_cache(self):
        campaign = _campaign_for(_mixed_grid())
        scalar = campaign.run(jobs=1)
        batched = campaign.run(jobs=1, batch=True, pooling=True,
                               prefix_cache=True)
        assert _record_lines(batched) == _record_lines(scalar)

    def test_supervised_execution_matches_scalar(self):
        campaign = _campaign_for(_evicting_grid(tests=2))
        scalar = campaign.run(jobs=1)
        supervised = campaign.run(jobs=2, batch=True, timeout_s=300.0,
                                  retries=1)
        assert _record_lines(supervised) == _record_lines(scalar)

    def test_checkpoint_and_resume(self, tmp_path):
        checkpoint = str(tmp_path / "ckpt.jsonl")
        campaign = _campaign_for(_evicting_grid(tests=2))
        scalar = campaign.run(jobs=1)
        first = campaign.run(jobs=1, batch=True, checkpoint_path=checkpoint)
        assert _record_lines(first) == _record_lines(scalar)
        resumed = campaign.run(jobs=1, batch=True,
                               checkpoint_path=checkpoint, resume=True)
        assert _record_lines(resumed) == _record_lines(scalar)
        # Everything was restored, nothing re-batched.
        assert resumed.batch_stats()["batched"] == 0

    def test_batch_telemetry_events_match_stats(self, tmp_path):
        from repro.obs.telemetry import Telemetry, validate_events_file

        sink = tmp_path / "events.jsonl"
        campaign = _campaign_for(_evicting_grid(tests=2))
        with Telemetry(sink) as bus:
            result = campaign.run(jobs=1, batch=True, telemetry=bus)
        validate_events_file(sink)
        kinds = {}
        with sink.open() as handle:
            for line in handle:
                event = json.loads(line)
                kinds.setdefault(event["kind"], []).append(event["payload"])
        stats = result.batch_stats()
        assert sum(p["lanes"] for p in kinds["batch_formed"]) == \
            stats["batched"]
        assert len(kinds["lane_evicted"]) == stats["evicted"]

    def test_batch_size_validation(self):
        campaign = _campaign_for(_evicting_grid(tests=1))
        with pytest.raises(CampaignError):
            campaign.run(jobs=1, batch=True, batch_size=0)


class TestFallbacks:
    def test_divergence_falls_back_to_scalar(self, monkeypatch):
        campaign = _campaign_for(_evicting_grid(tests=2))
        scalar = campaign.run(jobs=1)

        def explode(self):
            raise BatchDivergenceError("induced for the test")

        monkeypatch.setattr(BatchStepper, "run", explode)
        batched = campaign.run(jobs=1, batch=True)
        assert _record_lines(batched) == _record_lines(scalar)
        assert batched.batch_stats()["batched"] == 0

    def test_lifecycle_specs_are_not_batchable(self):
        config = catalog_config("high-root", num_tests=2, duration=2.0)
        for spec in config.compile():
            assert not batchable_spec(spec)

    def test_cold_boot_specs_are_not_batchable(self):
        config = _evicting_grid(tests=1)
        spec = next(iter(config.compile()))
        assert batchable_spec(spec)
        object.__setattr__(spec, "cold_boot", True)
        assert not batchable_spec(spec)

    def test_sut_without_fork_support_runs_scalar(self):
        # The no-isolation SUT family supports snapshots only if it defines
        # them; supports_batching is the worker-side gate.
        class Minimal:
            pass

        assert not supports_batching(Minimal())


class TestBatchPlanning:
    def _family(self, specs):
        from repro.engine.scheduler import PrefixFamily
        items = tuple(WorkItem(index=i, spec=s) for i, s in enumerate(specs))
        return PrefixFamily(key="k", items=items)

    def test_single_eligible_member_stays_scalar(self):
        config = _evicting_grid(tests=1)
        specs = list(config.compile())[:1]
        batches, scalar = plan_family_batches(
            self._family(specs), 8, batchable_spec)
        assert batches == []
        assert [item.spec for item in scalar] == specs

    def test_trailing_singleton_batch_joins_scalar(self):
        config = _evicting_grid(tests=2)
        specs = [s for s in config.compile()][:5]
        batches, scalar = plan_family_batches(
            self._family(specs), 2, batchable_spec)
        assert [len(batch) for batch in batches] == [2, 2]
        assert len(scalar) == 1

    def test_invalid_batch_size_raises(self):
        with pytest.raises(CampaignError):
            plan_family_batches(self._family([]), 0, batchable_spec)
