"""Tests for checkpointing and killed-then-resumed campaigns."""

import pytest

from repro.core.campaign import Campaign
from repro.core.experiment import default_sut_factory
from repro.core.plan import TestPlan, paper_figure3_plan
from repro.core.recording import RecordStore
from repro.engine import CampaignEngine, Checkpoint


@pytest.fixture(scope="module")
def plan():
    return paper_figure3_plan(num_tests=6, duration=2.0)


@pytest.fixture(scope="module")
def sequential(plan):
    return Campaign(plan).run()


def interrupted_run(plan, path, upto):
    """Simulate a campaign killed after ``upto`` experiments: run a truncated
    plan (same names/seeds) with checkpointing, leaving a partial record file."""
    partial = TestPlan(name=plan.name, specs=list(plan.specs)[:upto])
    CampaignEngine(partial, checkpoint_path=str(path)).run()


class TestCheckpointWriting:
    def test_checkpoint_streams_records_into_missing_directory(self, plan, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        CampaignEngine(plan, jobs=2, checkpoint_path=str(path)).run()
        records = RecordStore(path).load()
        assert len(records) == len(plan)
        assert all(record.spec_id for record in records)

    def test_fresh_run_truncates_stale_checkpoint(self, plan, tmp_path):
        path = tmp_path / "run.jsonl"
        interrupted_run(plan, path, upto=3)
        assert len(RecordStore(path).load()) == 3
        # Same path, resume=False: stale records must not leak into the run.
        CampaignEngine(plan, checkpoint_path=str(path)).run()
        assert len(RecordStore(path).load()) == len(plan)


class TestResume:
    def test_resume_skips_checkpointed_specs(self, plan, sequential, tmp_path):
        path = tmp_path / "run.jsonl"
        interrupted_run(plan, path, upto=4)

        executed_seeds = []

        def counting_factory(seed):
            executed_seeds.append(seed)
            return default_sut_factory(seed)

        resumed = CampaignEngine(
            plan, jobs=1, checkpoint_path=str(path), resume=True,
            sut_factory=counting_factory,
        ).run()
        # Only the two missing specs ran; results still cover the whole plan
        # in order and match the never-interrupted sequential run.
        assert executed_seeds == [spec.seed for spec in list(plan.specs)[4:]]
        assert len(resumed.results) == len(plan)
        assert [r.outcome for r in resumed.results] == \
            [r.outcome for r in sequential.results]
        assert len(RecordStore(path).load()) == len(plan)

    def test_fully_checkpointed_run_executes_nothing(self, plan, tmp_path):
        path = tmp_path / "run.jsonl"
        CampaignEngine(plan, checkpoint_path=str(path)).run()

        def poisoned_factory(seed):
            raise AssertionError(f"spec with seed {seed} was re-executed")

        resumed = CampaignEngine(
            plan, checkpoint_path=str(path), resume=True,
            sut_factory=poisoned_factory,
        ).run()
        assert len(resumed.results) == len(plan)

    def test_resume_matches_records_saved_without_spec_id(self, plan, tmp_path):
        # Records written by CampaignResult.save lack the spec_id stamp; the
        # checkpoint falls back to the (name, seed, scenario) triple.
        path = tmp_path / "legacy.jsonl"
        Campaign(plan).run().save(str(path))

        def poisoned_factory(seed):
            raise AssertionError("legacy records were not honoured on resume")

        resumed = CampaignEngine(
            plan, checkpoint_path=str(path), resume=True,
            sut_factory=poisoned_factory,
        ).run()
        assert len(resumed.results) == len(plan)

    def test_changed_spec_identity_is_re_executed(self, plan, tmp_path):
        path = tmp_path / "run.jsonl"
        CampaignEngine(plan, checkpoint_path=str(path)).run()
        checkpoint = Checkpoint(path)
        checkpoint.load()
        spec = list(plan.specs)[0]
        assert checkpoint.is_complete(spec)
        from dataclasses import replace
        # Same name, different seed: a different experiment, not resumable.
        assert not checkpoint.is_complete(replace(spec, seed=spec.seed + 500))
        # Same (name, seed, scenario) triple but a changed setup: the stamped
        # identity no longer matches, so the loose triple must not rescue it.
        assert not checkpoint.is_complete(replace(spec, duration=spec.duration + 1))


class TestCheckpointUnit:
    def test_commit_stamps_spec_identity(self, plan, sequential, tmp_path):
        checkpoint = Checkpoint(tmp_path / "unit.jsonl")
        spec = list(plan.specs)[0]
        record = checkpoint.commit(spec, sequential.results[0])
        assert record.spec_id == spec.identity()
        assert checkpoint.is_complete(spec)
        restored = checkpoint.result_for(spec)
        assert restored is not None
        assert restored.outcome is sequential.results[0].outcome

    def test_load_returns_record_count(self, plan, tmp_path):
        path = tmp_path / "run.jsonl"
        interrupted_run(plan, path, upto=2)
        checkpoint = Checkpoint(path)
        assert checkpoint.load() == 2
        assert len(checkpoint) == 2

    def test_torn_trailing_line_is_discarded_and_resumed(self, plan,
                                                         sequential, tmp_path):
        # A SIGKILL mid-append leaves a partial JSON line at the end of the
        # checkpoint; resume must drop it and re-run that spec, not crash.
        path = tmp_path / "run.jsonl"
        interrupted_run(plan, path, upto=3)
        content = path.read_text(encoding="utf-8")
        path.write_text(content[:-40], encoding="utf-8")

        resumed = CampaignEngine(
            plan, checkpoint_path=str(path), resume=True,
        ).run()
        assert len(resumed.results) == len(plan)
        assert [r.outcome for r in resumed.results] == \
            [r.outcome for r in sequential.results]
        # The rewritten checkpoint is whole again: every line parses.
        assert len(RecordStore(path).load()) == len(plan)

    def test_malformed_line_in_the_middle_still_raises(self, plan, tmp_path):
        from repro.errors import AnalysisError
        path = tmp_path / "run.jsonl"
        interrupted_run(plan, path, upto=3)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[0] = lines[0][:-10]   # corrupt a non-final record
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(AnalysisError):
            Checkpoint(path).load()

    def test_identity_covers_timing_parameters(self, plan):
        from dataclasses import replace
        spec = list(plan.specs)[0]
        assert spec.identity() != replace(spec, observe_time=99.0).identity()
        assert spec.identity() != replace(spec, settle_time=5.0).identity()
        assert spec.identity() != replace(spec, warmup_time=9.0).identity()

    def test_identity_covers_component_parameters(self, plan):
        # describe() strings are lossy (two MultiRegisterBitFlip counts share
        # one name); identity must hash component state, not display names.
        from dataclasses import replace
        from repro.core.faultmodels import MultiRegisterBitFlip
        from repro.core.triggers import ProbabilisticTrigger
        spec = list(plan.specs)[0]
        two = replace(spec, fault_model=MultiRegisterBitFlip(count=2))
        eight = replace(spec, fault_model=MultiRegisterBitFlip(count=8))
        assert two.identity() != eight.identity()
        low = replace(spec, trigger=ProbabilisticTrigger(0.0001))
        high = replace(spec, trigger=ProbabilisticTrigger(0.0004))
        assert low.identity() != high.identity()

    def test_identity_is_stable_for_custom_components(self, plan):
        # User-subclassed triggers may hold plain objects; identity must hash
        # their public state, never a repr with a memory address in it.
        from dataclasses import replace
        from repro.core.triggers import EveryNCalls

        class _Helper:
            def __init__(self, x):
                self.x = x

        class _CustomTrigger(EveryNCalls):
            def __init__(self, x):
                super().__init__(10)
                self.helper = _Helper(x)

        spec = list(plan.specs)[0]
        one = replace(spec, trigger=_CustomTrigger(1))
        same = replace(spec, trigger=_CustomTrigger(1))
        other = replace(spec, trigger=_CustomTrigger(2))
        assert one.identity() == same.identity()
        assert one.identity() != other.identity()

    def test_restored_results_do_not_leak_spec_id(self, plan, sequential,
                                                  tmp_path):
        path = tmp_path / "run.jsonl"
        interrupted_run(plan, path, upto=3)
        resumed = CampaignEngine(
            plan, checkpoint_path=str(path), resume=True,
        ).run()
        # Restored and freshly executed results are indistinguishable: the
        # checkpoint-internal spec_id stamp must not surface in extras, and
        # re-saving the resumed campaign matches a never-interrupted save.
        assert all("spec_id" not in r.extras for r in resumed.results)
        assert resumed.to_records() == sequential.to_records()

    def test_resume_prunes_records_of_changed_specs(self, plan, tmp_path):
        from dataclasses import replace
        path = tmp_path / "run.jsonl"
        CampaignEngine(plan, checkpoint_path=str(path)).run()
        # Change every spec's definition (duration) and resume at the same
        # checkpoint: all specs re-run, and the stale records must be purged
        # rather than left to double-count in downstream reports.
        changed = TestPlan(
            name=plan.name,
            specs=[replace(spec, duration=spec.duration + 1.0)
                   for spec in plan.specs],
        )
        CampaignEngine(changed, checkpoint_path=str(path), resume=True).run()
        records = RecordStore(path).load()
        assert len(records) == len(plan)
        assert all(record.duration == pytest.approx(3.0) for record in records)

    def test_resume_prunes_orphans_of_renamed_specs(self, plan, tmp_path):
        from dataclasses import replace
        path = tmp_path / "run.jsonl"
        CampaignEngine(plan, checkpoint_path=str(path)).run()
        specs = list(plan.specs)
        renamed = TestPlan(
            name=plan.name,
            specs=[replace(specs[0], name=specs[0].name + "-renamed")]
            + specs[1:],
        )
        CampaignEngine(renamed, checkpoint_path=str(path), resume=True).run()
        records = RecordStore(path).load()
        # The old spec's orphan record is gone; exactly one record per spec.
        assert len(records) == len(plan)
        assert sorted(r.spec_name for r in records) == \
            sorted(s.name for s in renamed.specs)

    def test_legacy_records_with_changed_setup_are_not_restored(self, plan,
                                                                tmp_path):
        from dataclasses import replace
        # Unstamped records (plain CampaignResult.save) match on the triple
        # plus the setup fields they persist; a changed duration must force
        # re-execution instead of silently restoring stale results.
        path = tmp_path / "legacy.jsonl"
        Campaign(plan).run().save(str(path))
        changed = TestPlan(
            name=plan.name,
            specs=[replace(spec, duration=spec.duration + 1.0)
                   for spec in plan.specs],
        )
        resumed = CampaignEngine(
            changed, checkpoint_path=str(path), resume=True,
        ).run()
        assert all(r.duration == pytest.approx(3.0) for r in resumed.results)
        records = RecordStore(path).load()
        assert len(records) == len(plan)
        assert all(record.duration == pytest.approx(3.0) for record in records)


class TestAtomicFlush:
    def _spec_and_result(self, plan, sequential, index=0):
        return plan.specs[index], sequential.results[index]

    def test_commit_flushes_immediately_by_default(self, plan, sequential,
                                                   tmp_path):
        checkpoint = Checkpoint(tmp_path / "run.jsonl")
        spec, result = self._spec_and_result(plan, sequential)
        checkpoint.commit(spec, result)
        assert checkpoint.flushes == 1
        assert not checkpoint.dirty
        assert len(RecordStore(checkpoint.path).load()) == 1

    def test_flush_interval_batches_commits(self, plan, sequential, tmp_path):
        checkpoint = Checkpoint(tmp_path / "run.jsonl",
                                flush_interval_s=3600.0)
        for index in range(3):
            spec, result = self._spec_and_result(plan, sequential, index)
            checkpoint.commit(spec, result)
        # Nothing hit the disk yet; the records are buffered and dirty.
        assert checkpoint.dirty
        assert checkpoint.flushes == 0
        assert not checkpoint.path.exists()
        assert checkpoint.flush() is True
        assert checkpoint.flushes == 1
        assert not checkpoint.dirty
        assert len(RecordStore(checkpoint.path).load()) == 3

    def test_flush_is_idempotent_when_clean(self, plan, sequential, tmp_path):
        checkpoint = Checkpoint(tmp_path / "run.jsonl")
        spec, result = self._spec_and_result(plan, sequential)
        checkpoint.commit(spec, result)
        assert checkpoint.flush() is False       # nothing new to write
        assert checkpoint.flushes == 1

    def test_flush_replaces_the_file_atomically(self, plan, sequential,
                                                tmp_path):
        path = tmp_path / "run.jsonl"
        checkpoint = Checkpoint(path, flush_interval_s=3600.0)
        for index in range(2):
            spec, result = self._spec_and_result(plan, sequential, index)
            checkpoint.commit(spec, result)
        checkpoint.flush()
        # The write path goes tmp + fsync + rename: no temp file survives
        # and the target is a complete, parseable record file.
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != path.name]
        assert leftovers == []
        assert len(RecordStore(path).load()) == 2

    def test_negative_flush_interval_is_rejected(self, tmp_path):
        from repro.errors import CampaignError
        with pytest.raises(CampaignError):
            Checkpoint(tmp_path / "run.jsonl", flush_interval_s=-1.0)

    def test_engine_flushes_batched_checkpoint_on_exit(self, plan, tmp_path):
        path = tmp_path / "run.jsonl"
        engine = CampaignEngine(plan, checkpoint_path=str(path),
                                flush_interval_s=3600.0)
        engine.run()
        # Every record was buffered during the run; the engine's final flush
        # must land all of them even though the interval never elapsed.
        assert len(RecordStore(path).load()) == len(plan)
