"""Campaign-level parity of snapshot/reset pooling.

A pooled campaign must be record-for-record identical to the cold-boot
``jobs=1`` sequential execution — outcomes, injections, rationales,
availability counts, everything the record schema captures.
"""

import dataclasses

from repro.core.campaign import Campaign
from repro.core.experiment import ExperimentSpec, Scenario, SingleBitFlip
from repro.core.plan import TestPlan, paper_figure3_plan
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls
from repro.engine import CampaignEngine
from repro.engine.workers import PooledSutFactory


def records_of(result):
    return [dataclasses.asdict(record) for record in result.to_records()]


class TestCampaignPoolingParity:
    def test_pooled_campaign_matches_cold_boot_sequential(self):
        plan = paper_figure3_plan(num_tests=4, duration=3.0)
        cold = CampaignEngine(plan, jobs=1).run()
        pooled = CampaignEngine(plan, jobs=1, pooling=True).run()
        assert records_of(cold) == records_of(pooled)

    def test_campaign_run_pooling_kwarg_matches(self):
        plan = paper_figure3_plan(num_tests=3, duration=3.0)
        cold = Campaign(plan).run()
        pooled = Campaign(plan).run(pooling=True)
        assert records_of(cold) == records_of(pooled)

    def test_cold_boot_opt_out_spec_is_honoured(self):
        specs = []
        for seed in range(3):
            specs.append(ExperimentSpec(
                name=f"optout-{seed}",
                target=InjectionTarget.nonroot_cpu_trap(),
                trigger=EveryNCalls(80),
                fault_model=SingleBitFlip(),
                scenario=Scenario.STEADY_STATE,
                duration=3.0,
                seed=seed,
                cold_boot=(seed == 1),      # middle spec opts out of pooling
            ))
        plan = TestPlan(name="optout", specs=specs)
        cold = CampaignEngine(plan, jobs=1).run()
        pooled = CampaignEngine(plan, jobs=1, pooling=True).run()
        assert records_of(cold) == records_of(pooled)

    def test_pooled_factory_falls_back_for_non_pooling_suts(self):
        built = []

        class PlainSut:
            """No snapshot-pooling protocol: must cold-build every time."""

            def __init__(self, seed):
                self.seed = seed

        def base_factory(seed):
            sut = PlainSut(seed)
            built.append(sut)
            return sut

        factory = PooledSutFactory(base_factory)
        first = factory(1)
        second = factory(1)
        assert first is not second
        assert len(built) == 2


class TestPooledParallelParity:
    def test_pooled_pool_matches_sequential(self):
        """Each worker pools independently; results still match plan order."""
        plan = paper_figure3_plan(num_tests=4, duration=2.0)
        sequential = CampaignEngine(plan, jobs=1).run()
        parallel_pooled = CampaignEngine(plan, jobs=2, pooling=True).run()
        assert records_of(sequential) == records_of(parallel_pooled)
