"""Tests for parallel execution parity and live aggregation."""

import pytest

from repro.core.campaign import Campaign
from repro.core.experiment import default_sut_factory
from repro.core.plan import paper_figure3_plan
from repro.engine import CampaignEngine, LiveAggregator
from repro.errors import CampaignError


@pytest.fixture(scope="module")
def plan():
    return paper_figure3_plan(num_tests=8, duration=2.0)


@pytest.fixture(scope="module")
def sequential(plan):
    return Campaign(plan).run()


class TestParity:
    def test_jobs_4_matches_sequential_outcome_for_outcome(self, plan, sequential):
        parallel = CampaignEngine(plan, jobs=4).run()
        assert len(parallel.results) == len(sequential.results)
        for seq, par in zip(sequential.results, parallel.results):
            assert par.spec_name == seq.spec_name
            assert par.outcome is seq.outcome
            assert par.injections == seq.injections
            assert par.seed == seq.seed
        assert parallel.outcome_counts() == sequential.outcome_counts()

    def test_jobs_1_engine_matches_sequential(self, plan, sequential):
        serial = CampaignEngine(plan, jobs=1).run()
        assert [r.outcome for r in serial.results] == \
            [r.outcome for r in sequential.results]

    def test_campaign_run_delegates_with_jobs(self, plan, sequential):
        delegated = Campaign(plan).run(jobs=2)
        assert [r.outcome for r in delegated.results] == \
            [r.outcome for r in sequential.results]

    def test_explicit_chunk_size_does_not_change_results(self, plan, sequential):
        chunked = CampaignEngine(plan, jobs=2, chunk_size=3).run()
        assert [r.outcome for r in chunked.results] == \
            [r.outcome for r in sequential.results]


class TestProgressAndAggregation:
    def test_progress_receives_monotonic_snapshots(self, plan):
        snapshots = []
        CampaignEngine(
            plan, jobs=2,
            progress=lambda snapshot, result: snapshots.append(snapshot),
        ).run()
        assert len(snapshots) == len(plan)
        assert [s.completed for s in snapshots] == list(range(1, len(plan) + 1))
        assert all(s.total == len(plan) for s in snapshots)
        final = snapshots[-1]
        assert sum(final.outcome_counts.values()) == len(plan)
        assert 0.0 <= final.failure_rate <= 1.0
        assert final.executed == len(plan)

    def test_progress_fires_exactly_once_per_experiment_with_jobs(self, plan):
        # The observability layer (telemetry, watch hub) rides this seam, so
        # a duplicate or dropped callback would corrupt every live metric:
        # each completed experiment must fire exactly one callback, in the
        # parent process, regardless of worker count or chunking.
        for jobs, chunk_size in ((2, 1), (2, 3), (4, "auto")):
            calls = []
            CampaignEngine(
                plan, jobs=jobs, chunk_size=chunk_size,
                progress=lambda snapshot, result: calls.append(
                    result.spec_name),
            ).run()
            assert len(calls) == len(plan)
            assert len(set(calls)) == len(plan)   # no spec reported twice

    def test_legacy_progress_callback_still_works(self, plan):
        seen = []
        Campaign(plan).run(
            progress=lambda done, total, result: seen.append((done, total))
        )
        assert seen == [(i + 1, len(plan)) for i in range(len(plan))]

    def test_aggregator_separates_restored_from_executed(self, plan):
        results = Campaign(plan).run().results
        aggregator = LiveAggregator(total=len(results))
        aggregator.restore(results[0])
        for result in results[1:]:
            aggregator.update(result)
        snapshot = aggregator.snapshot()
        assert snapshot.completed == len(results)
        assert snapshot.resumed == 1
        assert snapshot.executed == len(results) - 1
        assert "failure rate" in snapshot.format_line()


class TestEngineValidation:
    def test_resume_without_checkpoint_path_is_rejected(self, plan):
        with pytest.raises(CampaignError):
            CampaignEngine(plan, resume=True)

    def test_negative_jobs_is_rejected(self, plan):
        with pytest.raises(CampaignError):
            CampaignEngine(plan, jobs=-2)

    def test_jobs_zero_means_one_per_cpu(self, plan):
        engine = CampaignEngine(plan, jobs=0)
        assert engine.jobs >= 1
