"""Worker teardown discipline of the supervised pool.

Clean exhaustion must stop the workers cooperatively and reap every child
process; an early exit (consumer stops mid-stream, exception propagates) must
still release busy workers promptly. Either way no child may outlive the
stream and no multiprocessing resources (queues, semaphores) may be left for
the resource tracker to complain about — the pipe-per-worker design means
there is nothing shared to leak.
"""

import multiprocessing
import time

from repro.core.plan import paper_figure3_plan
from repro.engine.scheduler import build_work_queue
from repro.engine.workers import execute_pool


def _wait_for_no_new_children(baseline, deadline_s: float = 5.0):
    """Children beyond ``baseline`` still alive after ``deadline_s``."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        extra = [child for child in multiprocessing.active_children()
                 if child not in baseline]
        if not extra:
            return []
        time.sleep(0.02)
    return extra


class TestPoolTeardown:
    def test_clean_exhaustion_reaps_every_worker(self):
        baseline = set(multiprocessing.active_children())
        queue = build_work_queue(paper_figure3_plan(num_tests=4, duration=1.0))
        results = list(execute_pool(queue, jobs=2))
        assert len(results) == 4
        assert sorted(index for index, _ in results) == [0, 1, 2, 3]
        assert _wait_for_no_new_children(baseline) == []

    def test_early_exit_releases_workers(self):
        baseline = set(multiprocessing.active_children())
        queue = build_work_queue(paper_figure3_plan(num_tests=6, duration=1.0))
        stream = execute_pool(queue, jobs=2)
        next(stream)
        stream.close()                       # consumer walks away mid-stream
        assert _wait_for_no_new_children(baseline) == []

    def test_stream_yields_nothing_after_close(self):
        queue = build_work_queue(paper_figure3_plan(num_tests=4, duration=1.0))
        stream = execute_pool(queue, jobs=2)
        next(stream)
        stream.close()
        assert list(stream) == []
