"""Worker-pool teardown discipline of :func:`execute_pool`.

Clean exhaustion must wind the pool down with ``close()`` + ``join()`` —
``terminate()`` kills workers mid-teardown and can leak multiprocessing
resources — while an early exit (consumer stops, exception propagates) must
still ``terminate()`` promptly so no worker outlives its stream.
"""

from repro.core.plan import paper_figure3_plan
from repro.engine import workers
from repro.engine.scheduler import build_work_queue
from repro.engine.workers import execute_pool


class RecordingPool:
    """Wraps a real multiprocessing pool and records lifecycle calls."""

    def __init__(self, pool, calls):
        self._pool = pool
        self.calls = calls

    def imap_unordered(self, fn, tasks):
        return self._pool.imap_unordered(fn, tasks)

    def close(self):
        self.calls.append("close")
        self._pool.close()

    def terminate(self):
        self.calls.append("terminate")
        self._pool.terminate()

    def join(self):
        self.calls.append("join")
        self._pool.join()


class RecordingContext:
    def __init__(self, context, calls):
        self._context = context
        self.calls = calls

    def Pool(self, *args, **kwargs):
        return RecordingPool(self._context.Pool(*args, **kwargs), self.calls)


def patched_queue_and_calls(monkeypatch):
    calls = []
    real_context = workers._pool_context()
    monkeypatch.setattr(workers, "_pool_context",
                        lambda: RecordingContext(real_context, calls))
    plan = paper_figure3_plan(num_tests=4, duration=1.0)
    return build_work_queue(plan), calls


class TestPoolTeardown:
    def test_clean_exhaustion_closes_instead_of_terminating(self, monkeypatch):
        queue, calls = patched_queue_and_calls(monkeypatch)
        results = list(execute_pool(queue, jobs=2))
        assert len(results) == 4
        assert sorted(index for index, _ in results) == [0, 1, 2, 3]
        assert calls == ["close", "join"]

    def test_early_exit_terminates(self, monkeypatch):
        queue, calls = patched_queue_and_calls(monkeypatch)
        stream = execute_pool(queue, jobs=2)
        next(stream)
        stream.close()                       # consumer walks away mid-stream
        assert calls == ["terminate", "join"]
