"""AggregateSnapshot.summary()/to_dict() formatting (observability surface)."""

from repro.engine.aggregate import AggregateSnapshot


def snapshot(**overrides):
    fields = dict(
        total=10, completed=10, resumed=2,
        outcome_counts={"correct": 6, "panic_park": 3, "cpu_park": 1},
        failures=4, injections=25, elapsed=4.0,
        prefix_hits=0, prefix_misses=0,
    )
    fields.update(overrides)
    return AggregateSnapshot(**fields)


class TestSummary:
    def test_headline_and_outcome_lines(self):
        text = snapshot().summary()
        lines = text.splitlines()
        assert lines[0] == ("campaign: 10/10 experiments (2 resumed) "
                            "in 4.0 s (2.0 tests/s)")
        assert lines[1] == "failure rate 40.0%, 25 injections"
        # Outcomes ordered by descending count, aligned columns.
        assert lines[2].split() == ["correct", "6", "60.0%"]
        assert lines[3].split() == ["panic_park", "3", "30.0%"]
        assert lines[4].split() == ["cpu_park", "1", "10.0%"]

    def test_count_ties_break_by_name_for_stable_output(self):
        text = snapshot(
            outcome_counts={"panic_park": 5, "correct": 5}).summary()
        outcome_lines = text.splitlines()[2:]
        assert outcome_lines[0].split()[0] == "correct"
        assert outcome_lines[1].split()[0] == "panic_park"

    def test_prefix_cache_line_only_when_the_cache_served(self):
        assert "prefix cache" not in snapshot().summary()
        with_cache = snapshot(prefix_hits=7, prefix_misses=3).summary()
        assert with_cache.splitlines()[-1] == "prefix cache: 7 hits / 3 misses"
        misses_only = snapshot(prefix_misses=2).summary()
        assert "prefix cache: 0 hits / 2 misses" in misses_only

    def test_empty_campaign_summary_does_not_divide_by_zero(self):
        text = snapshot(total=0, completed=0, resumed=0, outcome_counts={},
                        failures=0, injections=0, elapsed=0.0).summary()
        assert "0/0 experiments" in text


class TestToDict:
    def test_round_trips_every_field(self):
        data = snapshot(prefix_hits=4, prefix_misses=1).to_dict()
        assert data["total"] == 10
        assert data["executed"] == 8          # completed minus resumed
        assert data["failure_rate"] == 0.4
        assert data["throughput_per_s"] == 2.0
        assert data["outcome_counts"]["correct"] == 6
        assert data["prefix_hits"] == 4
        assert data["prefix_misses"] == 1

    def test_counts_are_copied_not_aliased(self):
        snap = snapshot()
        data = snap.to_dict()
        data["outcome_counts"]["correct"] = 999
        assert snap.outcome_counts["correct"] == 6
