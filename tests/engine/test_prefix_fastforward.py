"""Prefix fast-forward: parity, families, LRU behaviour, opt-outs.

The contract of the subsystem is absolute: a campaign run with the prefix
cache on must be record-for-record identical to cold execution — the cache
may only change *when* the golden bring-up executes, never what any
experiment observes.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig, PartRef, catalog_config
from repro.core.experiment import ExperimentSpec, Scenario, SingleBitFlip
from repro.core.plan import TestPlan, paper_figure3_plan
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls, OneShotAtCall
from repro.engine import CampaignEngine
from repro.engine.scheduler import (
    build_work_queue,
    group_by_prefix,
    shard_families,
)
from repro.engine.workers import PrefixSnapshotCache, shareable_keys_of
from repro.errors import CampaignError


def records_of(result):
    return [dataclasses.asdict(record) for record in result.to_records()]


def shared_prefix_config(*, tests: int = 2, variants: int = 3,
                         duration: float = 1.0,
                         settle: float = 2.0) -> CampaignConfig:
    """A grid whose fault-model axis fans each seed into a prefix family."""
    fault_models = [
        PartRef("single-bit-flip", tag="sbf"),
        PartRef("multi-register-bit-flip", {"count": 2}, tag="mr2"),
        PartRef("register-class-bit-flip", {"target_class": "sp"}, tag="sp"),
        PartRef("register-class-bit-flip", {"target_class": "pc"}, tag="pc"),
    ][:variants]
    return CampaignConfig(
        name="prefix-shared",
        targets=[PartRef("nonroot-trap")],
        triggers=[PartRef("every-n-calls", {"n": 60}, tag="t60")],
        fault_models=fault_models,
        scenarios=["steady-state"],
        tests=tests,
        duration=duration,
        settle_time=settle,
        intensity="medium",
    )


class TestPrefixKey:
    def spec(self, **overrides) -> ExperimentSpec:
        payload = dict(
            name="base",
            target=InjectionTarget.nonroot_cpu_trap(),
            trigger=EveryNCalls(100),
            fault_model=SingleBitFlip(),
            scenario=Scenario.STEADY_STATE,
            duration=10.0,
            seed=3,
        )
        payload.update(overrides)
        return ExperimentSpec(**payload)

    def test_injection_axes_do_not_split_families(self):
        base = self.spec()
        variants = [
            self.spec(name="other-name"),
            self.spec(trigger=EveryNCalls(7)),
            self.spec(trigger=OneShotAtCall(5)),
            self.spec(fault_model=SingleBitFlip(), intensity="high"),
            self.spec(target=InjectionTarget.hvc_and_trap(cpus=[0])),
            self.spec(duration=99.0),
        ]
        for variant in variants:
            assert variant.prefix_key() == base.prefix_key()

    def test_prefix_determinants_split_families(self):
        base = self.spec()
        assert self.spec(seed=4).prefix_key() != base.prefix_key()
        assert (self.spec(scenario=Scenario.PARK_AND_RECOVER).prefix_key()
                != base.prefix_key())
        assert self.spec(settle_time=2.5).prefix_key() != base.prefix_key()
        assert base.prefix_key(sut="bao-like") != base.prefix_key()

    def test_lifecycle_prefix_ignores_settle_and_observe(self):
        # The lifecycle scenarios arm right after setup: their prefix is the
        # bare boot, so post-arm timing must not split the family.
        base = self.spec(scenario=Scenario.LIFECYCLE_UNDER_FAULT)
        same = self.spec(scenario=Scenario.LIFECYCLE_UNDER_FAULT,
                         settle_time=9.0, observe_time=5.0, warmup_time=0.5)
        assert base.prefix_key() == same.prefix_key()

    def test_both_lifecycle_scenarios_share_one_family(self):
        # Their prefixes are literally the same code path (bare setup), so
        # one boot snapshot serves both scenarios of a seed.
        lifecycle = self.spec(scenario=Scenario.LIFECYCLE_UNDER_FAULT)
        repeated = self.spec(scenario=Scenario.REPEATED_LIFECYCLE)
        assert lifecycle.prefix_key() == repeated.prefix_key()
        # Steady-state and park-and-recover validate their golden runs
        # differently, so they stay separate despite similar bring-ups.
        steady = self.spec(scenario=Scenario.STEADY_STATE)
        park = self.spec(scenario=Scenario.PARK_AND_RECOVER)
        assert steady.prefix_key() != park.prefix_key()

    def test_key_is_stable_across_processes(self):
        # A bare hash of attribute values, no id()/repr() leakage.
        assert self.spec().prefix_key() == self.spec().prefix_key()
        assert len(self.spec().prefix_key()) == 16


class TestSchedulerFamilies:
    def queue(self, config=None):
        config = config or shared_prefix_config(tests=2, variants=3)
        return build_work_queue(config.compile())

    def test_group_by_prefix_groups_seed_families(self):
        families = group_by_prefix(self.queue())
        assert [len(family) for family in families] == [3, 3]
        for family in families:
            seeds = {item.spec.seed for item in family.items}
            assert len(seeds) == 1

    def test_grouping_keeps_first_appearance_order(self):
        queue = self.queue()
        families = group_by_prefix(queue)
        first_indices = [family.items[0].index for family in families]
        assert first_indices == sorted(first_indices)

    def test_families_partition_the_queue(self):
        # The serial backend executes the flattened family list; it must be
        # a permutation of the queue (nothing lost, nothing duplicated).
        queue = self.queue()
        flattened = [item for family in group_by_prefix(queue)
                     for item in family.items]
        assert sorted(item.index for item in flattened) == [
            item.index for item in queue
        ]

    def test_cold_boot_specs_get_singleton_families(self):
        # The grid compiles combo-major, so the queue interleaves the two
        # seed families; marking item 0 cold_boot splits it out alone.
        queue = self.queue()
        queue[0].spec.cold_boot = True
        families = group_by_prefix(queue)
        assert [len(family) for family in families] == [1, 3, 2]
        assert len(families[0]) == 1 and families[0].items[0].index == 0

    def test_shard_families_never_splits_a_family_by_default(self):
        families = group_by_prefix(self.queue())
        shards = shard_families(families, 1)
        assert [len(shard) for shard in shards] == [3, 3]
        merged = shard_families(families, 4)
        assert [len(shard) for shard in merged] == [6]

    def test_shard_families_rejects_bad_chunk_size(self):
        with pytest.raises(CampaignError):
            shard_families(group_by_prefix(self.queue()), 0)

    def test_min_shards_splits_large_families_to_feed_the_pool(self):
        # 2 families of 3 but 4 workers: the largest tasks are bisected so
        # no worker idles; every item survives exactly once.
        queue = self.queue()
        shards = shard_families(group_by_prefix(queue), 1, min_shards=4)
        assert len(shards) == 4
        flattened = sorted(item.index for shard in shards
                           for item in shard.items)
        assert flattened == [item.index for item in queue]
        # Splitting stops when only singletons remain.
        tiny = shard_families(group_by_prefix(queue[:2]), 1, min_shards=8)
        assert all(len(shard) == 1 for shard in tiny)

    def test_shareable_keys_exclude_singletons(self):
        assert len(shareable_keys_of(group_by_prefix(self.queue()))) == 2
        singles = build_work_queue(paper_figure3_plan(num_tests=3,
                                                      duration=2.0))
        assert shareable_keys_of(group_by_prefix(singles)) == frozenset()


class TestPrefixCacheLru:
    def test_eviction_is_least_recently_used(self):
        cache = PrefixSnapshotCache(2)
        cache.put("a", sut="SA", snapshot=1)
        cache.put("b", sut="SB", snapshot=2)
        assert cache.get("a").snapshot == 1      # refresh a
        cache.put("c", sut="SC", snapshot=3)
        assert cache.evictions == 1
        assert cache.get("b") is None            # b was the LRU victim
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_counters(self):
        cache = PrefixSnapshotCache(4)
        assert cache.get("missing") is None
        cache.put("k", sut=None, snapshot=None)
        cache.get("k")
        assert (cache.hits, cache.misses) == (1, 1)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(CampaignError):
            PrefixSnapshotCache(0)

    def test_singleton_families_are_not_snapshotted(self):
        # A snapshot nobody will fork from is pure overhead: with the
        # shareable-key set present, lone-family keys skip cache.put.
        cache = PrefixSnapshotCache(4, shareable_keys=frozenset({"shared"}))
        assert cache.worth_caching("shared")
        assert not cache.worth_caching("lone")
        unknown = PrefixSnapshotCache(4)     # no set: cache everything
        assert unknown.worth_caching("anything")


class TestCatalogParity:
    """Record-for-record parity on every paper catalog entry."""

    @pytest.mark.parametrize("key", ["fig3", "high-root", "high-nonroot",
                                     "park-and-recover"])
    def test_catalog_entry_parity(self, key):
        plan = catalog_config(key, num_tests=2, duration=3.0).compile()
        cold = CampaignEngine(plan, jobs=1).run()
        cached = CampaignEngine(plan, jobs=1, prefix_cache=True).run()
        assert records_of(cold) == records_of(cached)
        stats = cached.prefix_cache_stats()
        # Catalog entries use one seed per test: every family is a singleton.
        assert stats == {"hits": 0, "misses": 2, "uncached": 0}


class TestSharedPrefixParity:
    def test_families_fast_forward_with_identical_records(self):
        plan = shared_prefix_config(tests=2, variants=4).compile()
        cold = CampaignEngine(plan, jobs=1).run()
        cached = CampaignEngine(plan, jobs=1, prefix_cache=True).run()
        assert records_of(cold) == records_of(cached)
        assert cached.prefix_cache_stats() == {
            "hits": 6, "misses": 2, "uncached": 0
        }

    def test_parallel_and_pooled_combinations_match(self):
        plan = shared_prefix_config(tests=2, variants=3).compile()
        cold = CampaignEngine(plan, jobs=1).run()
        for kwargs in (dict(jobs=2, prefix_cache=True),
                       dict(jobs=1, prefix_cache=True, pooling=True),
                       dict(jobs=2, prefix_cache=True, pooling=True)):
            variant = CampaignEngine(plan, **kwargs).run()
            assert records_of(cold) == records_of(variant), kwargs

    def test_tiny_lru_capacity_still_correct(self):
        # Capacity 1 with interleaved families: the family-contiguous
        # schedule keeps it at one miss per family even so.
        plan = shared_prefix_config(tests=3, variants=3).compile()
        cold = CampaignEngine(plan, jobs=1).run()
        cached = CampaignEngine(plan, jobs=1, prefix_cache=True,
                                prefix_cache_size=1).run()
        assert records_of(cold) == records_of(cached)
        assert cached.prefix_cache_stats() == {
            "hits": 6, "misses": 3, "uncached": 0
        }

    def test_multi_scenario_grid_parity(self):
        # Mixed scenarios per seed: the steady-state family forks from the
        # post-settle snapshot, the lifecycle family from the bare post-boot
        # snapshot — both must replay bit-identically.
        config = shared_prefix_config(tests=2, variants=2)
        config.scenarios = ["steady-state", "lifecycle"]
        plan = config.compile()
        cold = CampaignEngine(plan, jobs=1).run()
        cached = CampaignEngine(plan, jobs=1, prefix_cache=True).run()
        assert records_of(cold) == records_of(cached)
        # 2 seeds x 2 scenarios = 4 families of 2 variants each.
        assert cached.prefix_cache_stats() == {
            "hits": 4, "misses": 4, "uncached": 0
        }

    def test_cross_lifecycle_family_parity(self):
        # lifecycle and repeated-lifecycle share a prefix family: the
        # repeated-lifecycle variant forks from the snapshot the lifecycle
        # miss captured, and must replay bit-identically.
        config = shared_prefix_config(tests=2, variants=1, duration=2.0)
        config.scenarios = ["lifecycle", "repeated-lifecycle"]
        plan = config.compile()
        cold = CampaignEngine(plan, jobs=1).run()
        cached = CampaignEngine(plan, jobs=1, prefix_cache=True).run()
        assert records_of(cold) == records_of(cached)
        # 2 seeds x 2 scenarios, one family per seed.
        assert cached.prefix_cache_stats() == {
            "hits": 2, "misses": 2, "uncached": 0
        }

    def test_campaign_run_prefix_cache_kwarg(self):
        plan = paper_figure3_plan(num_tests=3, duration=3.0)
        cold = Campaign(plan).run()
        cached = Campaign(plan).run(prefix_cache=True, chunk_size="auto")
        assert records_of(cold) == records_of(cached)

    def test_cold_boot_opt_out_bypasses_the_cache(self):
        specs = []
        for index in range(4):
            specs.append(ExperimentSpec(
                name=f"optout-{index}",
                target=InjectionTarget.nonroot_cpu_trap(),
                trigger=EveryNCalls(80),
                fault_model=SingleBitFlip(),
                scenario=Scenario.STEADY_STATE,
                duration=2.0,
                seed=11,                 # all four share one prefix...
                intensity="custom" if index != 1 else "optout",
                cold_boot=(index == 1),  # ...but one opts out entirely
            ))
        plan = TestPlan(name="optout", specs=specs)
        cold = CampaignEngine(plan, jobs=1).run()
        cached = CampaignEngine(plan, jobs=1, prefix_cache=True).run()
        assert records_of(cold) == records_of(cached)
        by_name = {result.spec_name: result for result in cached.results}
        assert by_name["optout-1"].prefix_cache_hit is None
        assert cached.prefix_cache_stats() == {
            "hits": 2, "misses": 1, "uncached": 1
        }

    def test_baseline_sut_is_served_by_the_cache(self):
        # The baseline SUTs subclass JailhouseSUT, so they inherit the
        # snapshot/fork protocol and fast-forward like the real deployment.
        plan = shared_prefix_config(tests=1, variants=3).compile()
        cold = CampaignEngine(plan, jobs=1, sut_factory="bao-like").run()
        cached = CampaignEngine(plan, jobs=1, sut_factory="bao-like",
                                prefix_cache=True).run()
        assert records_of(cold) == records_of(cached)
        assert cached.prefix_cache_stats() == {
            "hits": 2, "misses": 1, "uncached": 0
        }

    def test_non_snapshot_sut_bypasses_the_cache(self):
        from repro.engine.workers import _run_item_prefix_cached

        torn_down = []

        class PlainSut:
            """No snapshot/fork protocol: must run cold, outside the cache."""

            def teardown(self):
                torn_down.append(self)

        class FakeExperiment:
            spec = ExperimentSpec(
                name="plain", target=InjectionTarget.nonroot_cpu_trap(),
                trigger=EveryNCalls(10), fault_model=SingleBitFlip(),
                duration=1.0,
            )
            sut_factory = staticmethod(lambda seed: PlainSut())

            def run_prefix(self, sut):
                self.prefix_sut = sut

            def run_from_snapshot(self, sut, wall_start=None):
                assert sut is self.prefix_sut
                return SimpleNamespace(name="cold-result",
                                       prefix_wall_time=None)

        cache = PrefixSnapshotCache(2)
        experiment = FakeExperiment()
        result = _run_item_prefix_cached(experiment, cache)
        assert result.name == "cold-result"
        assert result.prefix_wall_time is not None   # bypass still times it
        assert (cache.bypasses, cache.hits, cache.misses) == (1, 0, 0)
        assert len(cache) == 0               # nothing was cached
        assert len(torn_down) == 1           # the cold SUT was torn down

    def test_checkpoint_resume_composes_with_the_cache(self, tmp_path):
        plan = shared_prefix_config(tests=2, variants=3).compile()
        path = str(tmp_path / "ckpt.jsonl")
        full = CampaignEngine(plan, jobs=1, prefix_cache=True,
                              checkpoint_path=path).run()
        resumed = CampaignEngine(plan, jobs=1, prefix_cache=True,
                                 checkpoint_path=path, resume=True).run()
        assert records_of(full) == records_of(resumed)
        # Everything came from the checkpoint: nothing executed, so nothing
        # hit or missed the cache this session.
        assert resumed.prefix_cache_stats() == {
            "hits": 0, "misses": 0, "uncached": 6
        }


class TestEngineChunkSizeValidation:
    def test_auto_is_accepted(self):
        plan = paper_figure3_plan(num_tests=2, duration=2.0)
        CampaignEngine(plan, chunk_size="auto")

    def test_bad_values_are_rejected(self):
        plan = paper_figure3_plan(num_tests=2, duration=2.0)
        with pytest.raises(CampaignError):
            CampaignEngine(plan, chunk_size="huge")
        with pytest.raises(CampaignError):
            CampaignEngine(plan, chunk_size=0)
