"""Chaos tests: the campaign survives the faults it is built to inject.

Two layers of violence:

* **Worker chaos** — a SUT factory that SIGKILLs its own worker process or
  wedges forever for chosen seeds, exactly once each (claimed through token
  files so a retry of the same seed proceeds cleanly). The supervised run
  must finish with records byte-identical to an unfaulted run: retries
  re-execute with the original seed and the simulation is seed-deterministic.
* **Parent chaos** — a real CLI campaign SIGKILLed mid-flight, then resumed
  with ``--resume``. The atomic checkpoint guarantees the surviving file is
  a valid prefix of the campaign: the resumed run completes with exactly one
  record per spec, no losses, no duplicates.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.campaign import Campaign
from repro.core.plan import paper_figure3_plan
from repro.core.recording import ExperimentRecord, RecordStore
from repro.core.registry import RegistrySutFactory
from repro.engine.runner import CampaignEngine


class ChaosFactory:
    """Misbehaves exactly once per marked seed, claimed via token files.

    The claim is the ``unlink`` of the token: whichever process removes the
    file owns the fault, so a respawned worker retrying the same seed finds
    no token and runs the experiment for real. Works under the fork *and*
    spawn start methods (state is on disk, not in the object).
    """

    def __init__(self, token_dir):
        self.token_dir = str(token_dir)
        self.base = RegistrySutFactory("jailhouse")

    def _claim(self, name: str) -> bool:
        try:
            os.unlink(os.path.join(self.token_dir, name))
            return True
        except FileNotFoundError:
            return False

    def __call__(self, seed):
        if self._claim(f"kill-{seed}"):
            os.kill(os.getpid(), signal.SIGKILL)
        if self._claim(f"hang-{seed}"):
            time.sleep(300)
        return self.base(seed)


def record_lines(results):
    return [ExperimentRecord.from_result(result).to_json()
            for result in results]


class TestWorkerChaos:
    def test_chaos_run_is_byte_identical_to_clean_run(self, tmp_path):
        plan = paper_figure3_plan(num_tests=10, duration=2.0)
        clean = Campaign(plan).run()

        seeds = [spec.seed for spec in plan.specs]
        (tmp_path / f"kill-{seeds[2]}").touch()
        (tmp_path / f"kill-{seeds[6]}").touch()
        (tmp_path / f"hang-{seeds[4]}").touch()

        engine = CampaignEngine(
            plan, jobs=3, sut_factory=ChaosFactory(tmp_path),
            timeout_s=2.0, retries=2,
        )
        chaotic = engine.run()

        assert engine.infra_counts.get("worker_crash") == 2
        assert engine.infra_counts.get("experiment_timeout") == 1
        assert engine.infra_counts.get("worker_respawn", 0) >= 3
        assert "spec_quarantined" not in engine.infra_counts
        # Every faulted seed was retried and re-ran deterministically: the
        # persisted records of both campaigns match byte for byte.
        assert record_lines(chaotic.results) == record_lines(clean.results)

    def test_serial_chaos_hang_recovers(self, tmp_path):
        plan = paper_figure3_plan(num_tests=4, duration=1.0)
        clean = Campaign(plan).run()
        (tmp_path / f"hang-{plan.specs[1].seed}").touch()
        engine = CampaignEngine(
            plan, jobs=1, sut_factory=ChaosFactory(tmp_path),
            timeout_s=1.0, retries=2,
        )
        chaotic = engine.run()
        assert engine.infra_counts.get("experiment_timeout") == 1
        assert record_lines(chaotic.results) == record_lines(clean.results)


class TestParentChaos:
    def test_sigkilled_campaign_resumes_losslessly(self, tmp_path):
        checkpoint = tmp_path / "records.jsonl"
        tests = 30
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        command = [
            sys.executable, "-m", "repro.cli", "fig3",
            "--tests", str(tests), "--duration", "60",
            "--jobs", "2", "--resume", str(checkpoint),
        ]

        process = subprocess.Popen(command, env=env,
                                   stdout=subprocess.DEVNULL,
                                   stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break                # finished before we got the knife in
                if (checkpoint.exists()
                        and checkpoint.read_bytes().count(b"\n") >= 2):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("campaign never wrote its first records")
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGKILL)
            process.wait()

        completed = subprocess.run(command, env=env, capture_output=True,
                                   text=True, timeout=120)
        assert completed.returncode == 0, completed.stderr

        records = list(RecordStore(checkpoint).iter_records())
        plan = paper_figure3_plan(num_tests=tests, duration=60.0)
        names = [record.spec_name for record in records]
        assert len(records) == tests
        assert len(set(names)) == tests              # no duplicates
        assert set(names) == {spec.name for spec in plan.specs}
        identities = {spec.name: spec.identity() for spec in plan.specs}
        for record in records:
            assert record.spec_id == identities[record.spec_name]
