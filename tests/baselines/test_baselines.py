"""Tests for the Bao-like and no-isolation baselines."""

import pytest

from repro.baselines.bao import BaoLikeSUT, bao_sut_factory
from repro.baselines.nohv import NoIsolationSUT, no_isolation_sut_factory
from repro.core.faultmodels import RegisterClassBitFlip
from repro.core.injection import FaultInjector
from repro.core.outcomes import Outcome, OutcomeClassifier
from repro.core.sut import SutConfig
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls
from repro.hw.registers import RegisterClass


def boot(sut):
    sut.setup()
    management = sut.perform_cell_lifecycle()
    assert management.create_succeeded and management.start_succeeded
    return sut


def pc_corrupting_injector(seed: int = 1) -> FaultInjector:
    """An injector that quickly corrupts the non-root guest's program counter."""
    return FaultInjector(
        target=InjectionTarget.nonroot_cpu_trap(),
        trigger=EveryNCalls(5),
        fault_model=RegisterClassBitFlip(RegisterClass.PROGRAM_COUNTER),
        seed=seed,
    )


def sp_corrupting_injector(seed: int = 1) -> FaultInjector:
    return FaultInjector(
        target=InjectionTarget.nonroot_cpu_trap(),
        trigger=EveryNCalls(5),
        fault_model=RegisterClassBitFlip(RegisterClass.STACK_POINTER),
        seed=seed,
    )


class TestBaoLikeBaseline:
    def test_factory_and_policy_flag(self):
        sut = bao_sut_factory(3)
        assert isinstance(sut, BaoLikeSUT)
        assert sut.hypervisor.contains_guest_faults
        assert not sut.hypervisor.escalate_parks_to_panic

    def test_workload_runs_identically_fault_free(self):
        sut = boot(BaoLikeSUT(SutConfig(seed=2)))
        sut.run(3.0)
        evidence = sut.evidence(0.0, sut.now)
        assert evidence.availability["FreeRTOS"].available
        assert not evidence.observation.panicked

    def test_guest_pc_corruption_is_contained_to_the_cell(self):
        sut = boot(BaoLikeSUT(SutConfig(seed=4)))
        injector = pc_corrupting_injector()
        sut.install_injector(injector)
        start = sut.now
        injector.arm()
        sut.run(30.0)
        evidence = sut.evidence(start, sut.now)
        # Under Jailhouse this workload panics the whole system; the Bao-like
        # containment policy keeps the root cell alive.
        assert not evidence.observation.panicked
        assert evidence.availability["BananaPi-Linux"].lines > 0
        outcome = OutcomeClassifier().classify(evidence).outcome
        assert outcome in (Outcome.CPU_PARK, Outcome.CORRECT)


class TestNoIsolationBaseline:
    def test_factory_and_policy_flag(self):
        sut = no_isolation_sut_factory(3)
        assert isinstance(sut, NoIsolationSUT)
        assert sut.hypervisor.escalate_parks_to_panic

    def test_unhandled_fault_takes_the_whole_system_down(self):
        sut = boot(NoIsolationSUT(SutConfig(seed=5)))
        injector = sp_corrupting_injector()
        sut.install_injector(injector)
        sut.freertos.stack_use_probability = 1.0
        start = sut.now
        injector.arm()
        sut.run(30.0)
        evidence = sut.evidence(start, sut.now)
        # What would have been a contained CPU park escalates to a system panic.
        assert evidence.observation.panicked
        outcome = OutcomeClassifier().classify(evidence).outcome
        assert outcome is Outcome.PANIC_PARK


class TestJailhouseReference:
    def test_same_sp_fault_is_contained_by_jailhouse(self, booted_sut):
        injector = sp_corrupting_injector()
        booted_sut.install_injector(injector)
        booted_sut.freertos.stack_use_probability = 1.0
        start = booted_sut.now
        injector.arm()
        booted_sut.run(30.0)
        evidence = booted_sut.evidence(start, booted_sut.now)
        assert not evidence.observation.panicked
        outcome = OutcomeClassifier().classify(evidence).outcome
        assert outcome is Outcome.CPU_PARK
        # Root cell kept running: the paper's isolation claim.
        assert evidence.availability["BananaPi-Linux"].lines > 0
