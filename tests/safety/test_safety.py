"""Tests for the ISO 26262 / SEooC assessment layer."""

import pytest

from repro.core.outcomes import Outcome
from repro.core.recording import ExperimentRecord
from repro.errors import SafetyAssessmentError
from repro.safety.asil import (
    AsilLevel,
    decomposition_pairs,
    mixed_criticality_allowed,
    valid_decomposition,
)
from repro.safety.evidence import build_evidence_report
from repro.safety.failure_modes import (
    FailureMode,
    classify_failure_mode,
    detectability,
    fmea_table,
    format_fmea,
    severity,
)
from repro.safety.metrics import compare_metrics, compute_isolation_metrics
from repro.safety.seooc import AssumptionStatus, SeoocAssessment, default_assumptions


def record(outcome: Outcome, seed: int, **kwargs) -> ExperimentRecord:
    defaults = dict(
        spec_name=f"t{seed}", outcome=outcome.value, rationale="", injections=10,
        duration=60.0, seed=seed, scenario="steady_state", target="trap",
        fault_model="single-bit-flip", intensity="medium",
    )
    defaults.update(kwargs)
    return ExperimentRecord(**defaults)


def campaign_records(correct=30, panic=0, park=5, invalid=5, inconsistent=0,
                     silent=0):
    records = []
    seed = 0
    for outcome, count in ((Outcome.CORRECT, correct), (Outcome.PANIC_PARK, panic),
                           (Outcome.CPU_PARK, park),
                           (Outcome.INVALID_ARGUMENTS, invalid),
                           (Outcome.INCONSISTENT_STATE, inconsistent),
                           (Outcome.SILENT_FAILURE, silent)):
        for _ in range(count):
            create_attempted = outcome in (Outcome.INVALID_ARGUMENTS, Outcome.CORRECT)
            records.append(record(
                outcome, seed,
                create_attempted=create_attempted,
                create_succeeded=outcome is not Outcome.INVALID_ARGUMENTS,
            ))
            seed += 1
    return records


class TestAsil:
    def test_ordering_and_labels(self):
        assert AsilLevel.D > AsilLevel.A > AsilLevel.QM
        assert AsilLevel.D.label == "ASIL D"
        assert AsilLevel.QM.label == "QM"
        assert AsilLevel.C.is_at_least(AsilLevel.B)

    def test_from_name_parsing(self):
        assert AsilLevel.from_name("ASIL-D") is AsilLevel.D
        assert AsilLevel.from_name("b") is AsilLevel.B
        assert AsilLevel.from_name("QM") is AsilLevel.QM
        with pytest.raises(SafetyAssessmentError):
            AsilLevel.from_name("Z")

    def test_decomposition_pairs_follow_iso_26262(self):
        assert (AsilLevel.B, AsilLevel.B) in decomposition_pairs(AsilLevel.D)
        assert (AsilLevel.C, AsilLevel.A) in decomposition_pairs(AsilLevel.D)
        assert decomposition_pairs(AsilLevel.QM) == []
        assert valid_decomposition(AsilLevel.D, AsilLevel.A, AsilLevel.C)
        assert not valid_decomposition(AsilLevel.D, AsilLevel.A, AsilLevel.A)

    def test_mixed_criticality_needs_demonstrated_isolation(self):
        levels = [AsilLevel.D, AsilLevel.QM]
        assert not mixed_criticality_allowed(levels, isolation_demonstrated=False)
        assert mixed_criticality_allowed(levels, isolation_demonstrated=True)
        assert mixed_criticality_allowed([AsilLevel.B, AsilLevel.B],
                                         isolation_demonstrated=False)
        with pytest.raises(SafetyAssessmentError):
            mixed_criticality_allowed([], isolation_demonstrated=True)


class TestFailureModes:
    def test_outcome_to_failure_mode_mapping(self):
        assert classify_failure_mode(Outcome.PANIC_PARK) is FailureMode.COMMON_CAUSE_FAILURE
        assert classify_failure_mode(Outcome.CPU_PARK) is FailureMode.PARTITION_LOSS_CONTAINED
        assert classify_failure_mode(Outcome.INVALID_ARGUMENTS) is FailureMode.SAFE_REJECTION
        assert classify_failure_mode(Outcome.INCONSISTENT_STATE) is FailureMode.STATE_DIVERGENCE
        assert classify_failure_mode(Outcome.CORRECT) is FailureMode.NO_FAILURE

    def test_severity_and_detectability_ordering(self):
        # Losing every partition is worse than losing one, and the state
        # divergence the paper flags is hard to detect.
        assert severity(FailureMode.COMMON_CAUSE_FAILURE) > severity(
            FailureMode.PARTITION_LOSS_CONTAINED)
        assert detectability(FailureMode.STATE_DIVERGENCE) > detectability(
            FailureMode.COMMON_CAUSE_FAILURE)

    def test_fmea_table_covers_observed_outcomes_and_sorts_by_risk(self):
        records = campaign_records(correct=10, panic=5, park=3, inconsistent=2)
        table = fmea_table(records)
        outcomes = {entry.outcome for entry in table}
        assert Outcome.PANIC_PARK in outcomes and Outcome.CORRECT in outcomes
        priorities = [entry.risk_priority for entry in table]
        assert priorities == sorted(priorities, reverse=True)
        assert sum(entry.occurrences for entry in table) == len(records)
        text = format_fmea(table)
        assert "common-cause" in text
        assert format_fmea([]) == "(no experiments)"


class TestIsolationMetrics:
    def test_metrics_computation(self):
        records = campaign_records(correct=30, panic=10, park=5, invalid=5)
        metrics = compute_isolation_metrics(records)
        assert metrics.total_tests == 50
        assert metrics.effective_tests == 20
        assert metrics.containment.fraction == pytest.approx(0.5)
        assert metrics.detection.fraction == pytest.approx(1.0)
        assert metrics.system_availability.fraction == pytest.approx(0.8)
        assert "containment" in metrics.describe()

    def test_compare_metrics_renders_table(self):
        a = compute_isolation_metrics(campaign_records(panic=10))
        b = compute_isolation_metrics(campaign_records(panic=0))
        text = compare_metrics({"jailhouse": a, "bao": b})
        assert "jailhouse" in text and "bao" in text
        assert compare_metrics({}) == "(no systems)"


class TestSeooc:
    def test_clean_campaign_validates_all_assumptions(self):
        records = campaign_records(correct=40, panic=0, park=8, invalid=8)
        assessment = SeoocAssessment()
        verdicts = assessment.assess(records)
        assert len(verdicts) == len(default_assumptions())
        assert all(v.status is AssumptionStatus.VALIDATED for v in verdicts)
        assert assessment.certification_ready(verdicts)

    def test_panic_heavy_campaign_violates_containment(self):
        records = campaign_records(correct=20, panic=20, park=2, invalid=2)
        verdicts = SeoocAssessment().assess(records)
        by_id = {verdict.identifier: verdict for verdict in verdicts}
        assert by_id["AoU-1"].status is AssumptionStatus.VIOLATED
        assert by_id["AoU-4"].status is AssumptionStatus.VIOLATED
        assert not SeoocAssessment().certification_ready(verdicts)

    def test_inconsistent_state_violates_detection_assumption(self):
        records = campaign_records(correct=40, inconsistent=3)
        by_id = {v.identifier: v for v in SeoocAssessment().assess(records)}
        assert by_id["AoU-2"].status is AssumptionStatus.VIOLATED

    def test_small_campaigns_are_inconclusive(self):
        records = campaign_records(correct=3, park=1, invalid=0)
        verdicts = SeoocAssessment().assess(records)
        assert any(v.status is AssumptionStatus.INCONCLUSIVE for v in verdicts)

    def test_assessment_requires_records(self):
        with pytest.raises(SafetyAssessmentError):
            SeoocAssessment().assess([])


class TestEvidenceReport:
    def test_report_combines_campaigns_and_renders(self):
        report = build_evidence_report(
            {
                "fig3": campaign_records(correct=30, panic=0, park=5),
                "high-root": campaign_records(correct=10, park=0, invalid=10),
            },
            remarks=["synthetic data for unit testing"],
        )
        assert report.total_tests == 60
        text = report.render()
        assert "SEooC assessment evidence" in text
        assert "AoU-1" in text and "AoU-4" in text
        assert "Conclusion" in text
        assert "synthetic data" in text

    def test_report_conclusion_tracks_readiness(self):
        ready = build_evidence_report({"c": campaign_records(correct=40, park=8,
                                                             invalid=8)})
        assert ready.certification_ready
        assert "can proceed" in ready.render()
        not_ready = build_evidence_report({"c": campaign_records(correct=10,
                                                                 panic=20)})
        assert not not_ready.certification_ready
        assert "NOT ready" in not_ready.render()

    def test_report_requires_campaigns_with_records(self):
        with pytest.raises(SafetyAssessmentError):
            build_evidence_report({})
        with pytest.raises(SafetyAssessmentError):
            build_evidence_report({"empty": []})
