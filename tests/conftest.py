"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.sut import JailhouseSUT, SutConfig
from repro.hw.board import BananaPiBoard, BoardConfig
from repro.hypervisor.cli import JailhouseCli
from repro.hypervisor.config import (
    bananapi_system_config,
    freertos_cell_config,
)
from repro.hypervisor.core import Hypervisor
from repro.hypervisor.cell import LoadedImage


@pytest.fixture
def board() -> BananaPiBoard:
    """A powered-on dual-core board."""
    board = BananaPiBoard(BoardConfig())
    board.power_on()
    return board


@pytest.fixture
def hypervisor(board: BananaPiBoard) -> Hypervisor:
    """An enabled hypervisor with its root cell."""
    hv = Hypervisor(board)
    hv.enable(bananapi_system_config())
    return hv


@pytest.fixture
def cli(hypervisor: Hypervisor) -> JailhouseCli:
    return JailhouseCli(hypervisor)


@pytest.fixture
def freertos_cell(hypervisor: Hypervisor, cli: JailhouseCli):
    """A created, loaded and started FreeRTOS cell (no guest attached)."""
    config = freertos_cell_config()
    assert cli.cell_create(config).success
    assert cli.cell_load(
        "FreeRTOS",
        LoadedImage(region_name="ram", entry_point=0x0, size=64 << 10),
    ).success
    assert cli.cell_start("FreeRTOS").success
    return hypervisor.cell_by_name("FreeRTOS")


@pytest.fixture
def booted_sut() -> JailhouseSUT:
    """A fully booted mixed-criticality deployment (Linux + FreeRTOS)."""
    sut = JailhouseSUT(SutConfig(seed=12345))
    sut.setup()
    management = sut.perform_cell_lifecycle()
    assert management.create_succeeded and management.start_succeeded
    return sut
