"""Dashboard rendering: the HTML page and its terminal twin."""

from repro.core.outcomes import Outcome
from repro.obs.dashboard import (
    OUTCOME_COLORS,
    OUTCOME_ORDER,
    render_dashboard_html,
    render_text_dashboard,
)
from repro.obs.rollup import TelemetryHub


class TestHtml:
    def test_page_is_self_contained(self):
        html = render_dashboard_html(title="unit test")
        assert "unit test" in html
        assert "<html" in html
        # Single-file contract: no external scripts, styles, or fonts.
        assert "http://" not in html and "https://" not in html
        assert "src=" not in html

    def test_page_embeds_the_validated_palette(self):
        html = render_dashboard_html()
        for outcome, (light, dark) in OUTCOME_COLORS.items():
            assert light in html
            assert dark in html

    def test_every_outcome_has_a_color_and_an_order_slot(self):
        names = {outcome.value for outcome in Outcome}
        assert set(OUTCOME_COLORS) == names
        assert set(OUTCOME_ORDER) == names


class TestText:
    def test_renders_live_metrics(self):
        hub = TelemetryHub()
        hub.set_campaign("unit", total=4)
        text = render_text_dashboard(hub.metrics())
        assert "unit" in text
        assert "outcome distribution" in text

    def test_empty_hub_renders_without_errors(self):
        assert render_text_dashboard(TelemetryHub().metrics())
