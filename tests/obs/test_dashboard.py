"""Dashboard rendering: the HTML page and its terminal twin."""

from repro.core.outcomes import Outcome
from repro.obs.dashboard import (
    OUTCOME_COLORS,
    OUTCOME_ORDER,
    render_dashboard_html,
    render_text_dashboard,
)
from repro.obs.rollup import TelemetryHub
from repro.obs.telemetry import Telemetry


class TestHtml:
    def test_page_is_self_contained(self):
        html = render_dashboard_html(title="unit test")
        assert "unit test" in html
        assert "<html" in html
        # Single-file contract: no external scripts, styles, or fonts.
        assert "http://" not in html and "https://" not in html
        assert "src=" not in html

    def test_page_embeds_the_validated_palette(self):
        html = render_dashboard_html()
        for outcome, (light, dark) in OUTCOME_COLORS.items():
            assert light in html
            assert dark in html

    def test_every_outcome_has_a_color_and_an_order_slot(self):
        names = {outcome.value for outcome in Outcome}
        assert set(OUTCOME_COLORS) == names
        assert set(OUTCOME_ORDER) == names


class TestText:
    def test_renders_live_metrics(self):
        hub = TelemetryHub()
        hub.set_campaign("unit", total=4)
        text = render_text_dashboard(hub.metrics())
        assert "unit" in text
        assert "outcome distribution" in text

    def test_empty_hub_renders_without_errors(self):
        assert render_text_dashboard(TelemetryHub().metrics())


def fleet_hub():
    """A hub fed the coordinator's fleet events through the real bus."""
    hub = TelemetryHub()
    bus = Telemetry()
    bus.subscribe(hub.on_event)
    bus.emit("host_joined", host="w1", host_id="h0001")
    bus.emit("host_joined", host="w2", host_id="h0002")
    bus.emit("lease_granted", host="w1", shard="ab12", campaign="c001-x",
             specs=2)
    bus.emit("lease_expired", host="w1", shard="ab12", campaign="c001-x",
             failures=1)
    bus.emit("host_lost", host="w1", host_id="h0001")
    bus.emit("shard_stolen", shard="ab12", from_host="w1", to_host="w2")
    bus.emit("result_merged", campaign="c001-x", shard="ab12", host="h0002",
             merged=2, duplicates=1, campaign_merged=4, campaign_total=6)
    return hub


class TestFleetRollup:
    def test_fleet_events_fold_into_the_counters(self):
        fleet = fleet_hub().metrics()["fleet"]
        assert fleet["hosts_joined"] == 2
        assert fleet["hosts_lost"] == 1
        assert fleet["leases_granted"] == 1
        assert fleet["leases_expired"] == 1
        assert fleet["shards_stolen"] == 1
        assert fleet["records_merged"] == 2
        assert fleet["duplicates"] == 1
        assert fleet["active"] is True
        assert fleet["campaigns"] == [
            {"campaign": "c001-x", "merged": 4, "total": 6}]

    def test_idle_hub_reports_the_fleet_inactive(self):
        fleet = TelemetryHub().metrics()["fleet"]
        assert fleet["active"] is False
        assert fleet["campaigns"] == []

    def test_non_fleet_events_leave_the_rollup_untouched(self):
        hub = TelemetryHub()
        bus = Telemetry()
        bus.subscribe(hub.on_event)
        bus.emit("batch_formed", batch_id="b1", lanes=4)
        fleet = hub.metrics()["fleet"]
        assert fleet["active"] is False
        assert fleet["records_merged"] == 0


class TestFleetRendering:
    def test_html_page_carries_the_fleet_card(self):
        html = render_dashboard_html()
        assert 'id="fleet"' in html
        assert "fleet coordinator inactive" in html

    def test_text_dashboard_shows_fleet_lines_when_active(self):
        text = render_text_dashboard(fleet_hub().metrics())
        assert "fleet:" in text
        assert "hosts 2 joined / 1 lost" in text
        assert "1 stolen" in text
        assert "records 2 merged" in text
        assert "c001-x" in text

    def test_text_dashboard_omits_fleet_when_inactive(self):
        hub = TelemetryHub()
        hub.set_campaign("solo", total=4)
        assert "fleet:" not in render_text_dashboard(hub.metrics())
