"""Watch server endpoints, exercised over real HTTP on an ephemeral port."""

import json
import urllib.request

import pytest

from repro.core.plan import paper_figure3_plan
from repro.engine import CampaignEngine
from repro.errors import ObservabilityError
from repro.obs.rollup import METRICS_SCHEMA, TelemetryHub
from repro.obs.server import WatchServer
from repro.obs.telemetry import Telemetry, validate_event_dict


def fetch(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8")


@pytest.fixture(scope="module")
def served_campaign():
    """A finished campaign behind a live watch server."""
    plan = paper_figure3_plan(num_tests=4, duration=2.0)
    hub = TelemetryHub()
    hub.set_campaign(plan.name, total=len(plan))
    telemetry = Telemetry()
    telemetry.subscribe(hub.on_event)
    engine = CampaignEngine(plan, progress=hub.on_progress,
                            telemetry=telemetry)
    result = engine.run()
    hub.mark_done()
    with WatchServer(hub) as server:
        yield plan, result, server


class TestEndpoints:
    def test_metrics_json(self, served_campaign):
        plan, result, server = served_campaign
        status, body = fetch(f"{server.url}/metrics.json")
        assert status == 200
        metrics = json.loads(body)
        assert metrics["schema"] == METRICS_SCHEMA
        assert metrics["state"] == "done"
        assert metrics["campaign"]["name"] == plan.name
        assert metrics["snapshot"]["completed"] == len(result.results)
        assert metrics["workers"]
        assert metrics["convergence"]["n"] == len(result.results)
        assert metrics["timing"]["timed_experiments"] == len(result.results)
        assert metrics["ascii"]["outcome_bars"]

    def test_dashboard_html(self, served_campaign):
        _, _, server = served_campaign
        status, body = fetch(f"{server.url}/")
        assert status == 200
        assert "<html" in body
        assert "metrics.json" in body        # the page polls itself
        for alias in ("/index.html", "/dashboard"):
            assert fetch(f"{server.url}{alias}")[1] == body

    def test_dashboard_txt(self, served_campaign):
        _, _, server = served_campaign
        status, body = fetch(f"{server.url}/dashboard.txt")
        assert status == 200
        assert "outcome distribution" in body

    def test_unknown_path_is_404(self, served_campaign):
        _, _, server = served_campaign
        try:
            status, _ = fetch(f"{server.url}/nope")
        except urllib.error.HTTPError as exc:
            status = exc.code
        assert status == 404

    def test_sse_tail_replays_retained_events(self, served_campaign):
        plan, _, server = served_campaign
        request = urllib.request.Request(f"{server.url}/events")
        events = []
        with urllib.request.urlopen(request, timeout=5.0) as response:
            assert response.headers["Content-Type"] == "text/event-stream"
            # The campaign is done, so the pre-seeded tail arrives at once;
            # read until we have every experiment_complete event.
            while len(events) < len(plan) + 2:
                line = response.readline().decode("utf-8").strip()
                if line.startswith("data: "):
                    events.append(json.loads(line[len("data: "):]))
        for event in events:
            validate_event_dict(event)
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "campaign_start"
        assert kinds.count("experiment_complete") == len(plan)


class TestLifecycle:
    def test_port_before_start_raises(self):
        server = WatchServer(TelemetryHub())
        with pytest.raises(ObservabilityError, match="not running"):
            server.port

    def test_double_start_raises(self):
        server = WatchServer(TelemetryHub()).start()
        try:
            with pytest.raises(ObservabilityError, match="already running"):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent(self):
        server = WatchServer(TelemetryHub()).start()
        server.stop()
        server.stop()

    def test_unbindable_port_is_a_clean_error(self):
        anchor = WatchServer(TelemetryHub()).start()
        try:
            with pytest.raises(ObservabilityError, match="cannot bind"):
                WatchServer(TelemetryHub(), port=anchor.port).start()
        finally:
            anchor.stop()
