"""Bench-history trajectory: discovery, flattening, machine flagging."""

import json
import subprocess

import pytest

from repro.errors import ObservabilityError
from repro.obs.bench_history import (
    BENCH_HISTORY_SCHEMA,
    collect_bench_history,
    flatten_metrics,
    format_history_markdown,
    format_history_text,
)


def write_bench(root, name, *, wall=1.0, machine=None, extra=None):
    report = {
        "schema": "bench_demo/v1",
        "scale": "full",
        "created_unix": 1700000000.0,
        "calibration_s": 0.05,
        "metrics": {"campaign": {"wall_s": wall}},
        "gates": {"max_regression": 2.0},
    }
    if machine is not None:
        report["machine"] = machine
    if extra:
        report.update(extra)
    (root / name).write_text(json.dumps(report))
    return report


class TestFlatten:
    def test_nested_numerics_become_dotted_keys(self):
        flat = flatten_metrics({
            "schema": "x/v1", "created_unix": 5, "machine": {"cpu_count": 8},
            "gates": {"limit": 2.0}, "pre_pr_reference": {"old": 9.0},
            "calibration_s": 0.07,
            "metrics": {"memory": {"read4_per_s": 2e6}, "flag": True,
                        "note": "text"},
        })
        assert flat == {
            "calibration_s": 0.07,
            "metrics.memory.read4_per_s": 2e6,
        }


class TestWorktreeOnly:
    def test_collects_files_without_git(self, tmp_path):
        write_bench(tmp_path, "BENCH_a.json", wall=1.5)
        write_bench(tmp_path, "BENCH_b.json", wall=2.5)
        history = collect_bench_history(tmp_path, include_git=False)
        assert history.benches == ["BENCH_a.json", "BENCH_b.json"]
        (entry,) = history.entries_by_bench["BENCH_a.json"]
        assert entry.commit == "worktree"
        assert entry.metrics["metrics.campaign.wall_s"] == 1.5

    def test_non_git_directory_degrades_to_worktree(self, tmp_path):
        write_bench(tmp_path, "BENCH_a.json")
        history = collect_bench_history(tmp_path, include_git=True)
        (entry,) = history.entries_by_bench["BENCH_a.json"]
        assert entry.commit == "worktree"

    def test_no_reports_is_an_error(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no benchmark reports"):
            collect_bench_history(tmp_path, include_git=False)

    def test_missing_root_is_an_error(self, tmp_path):
        with pytest.raises(ObservabilityError, match="does not exist"):
            collect_bench_history(tmp_path / "nope")


@pytest.fixture
def git_repo(tmp_path):
    """A repo with two committed versions of one bench plus a worktree edit."""
    def git(*args):
        subprocess.run(["git", "-C", str(tmp_path), *args], check=True,
                       capture_output=True,
                       env={"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                            "GIT_COMMITTER_NAME": "t",
                            "GIT_COMMITTER_EMAIL": "t@t",
                            "HOME": str(tmp_path), "PATH": "/usr/bin:/bin"})
    git("init", "-q")
    write_bench(tmp_path, "BENCH_a.json", wall=4.0)   # old: no machine block
    git("add", "BENCH_a.json")
    git("commit", "-qm", "first bench")
    write_bench(tmp_path, "BENCH_a.json", wall=2.0,
                machine={"python": "3.11.7", "platform": "linux",
                         "machine": "x86_64", "cpu_count": 8,
                         "implementation": "CPython"})
    git("add", "BENCH_a.json")
    git("commit", "-qm", "perf: halve campaign wall time")
    write_bench(tmp_path, "BENCH_a.json", wall=1.0,
                machine={"python": "3.11.7", "platform": "linux",
                         "machine": "x86_64", "cpu_count": 8,
                         "implementation": "CPython"})
    return tmp_path


class TestGitHistory:
    def test_trajectory_is_oldest_first_with_worktree_last(self, git_repo):
        history = collect_bench_history(git_repo)
        entries = history.entries_by_bench["BENCH_a.json"]
        assert [entry.metrics["metrics.campaign.wall_s"]
                for entry in entries] == [4.0, 2.0, 1.0]
        assert entries[0].commit != "worktree"
        assert entries[0].commit_time <= entries[1].commit_time
        assert entries[-1].commit == "worktree"
        assert "halve" in entries[1].subject

    def test_clean_worktree_copy_is_not_duplicated(self, git_repo):
        subprocess.run(["git", "-C", str(git_repo), "checkout", "--",
                        "BENCH_a.json"], check=True, capture_output=True)
        history = collect_bench_history(git_repo)
        entries = history.entries_by_bench["BENCH_a.json"]
        assert len(entries) == 2
        assert all(entry.commit != "worktree" for entry in entries)

    def test_old_entries_without_machine_block_flag_cross_host(self, git_repo):
        # One "unknown" (pre-block) entry + stamped entries = flagged.
        history = collect_bench_history(git_repo)
        assert history.cross_host("BENCH_a.json")
        assert "span multiple machines" in format_history_text(history)

    def test_uniform_machines_are_not_flagged(self, tmp_path):
        write_bench(tmp_path, "BENCH_a.json", machine={"cpu_count": 8})
        history = collect_bench_history(tmp_path, include_git=False)
        assert not history.cross_host("BENCH_a.json")


class TestFormats:
    @pytest.fixture
    def history(self, tmp_path):
        write_bench(tmp_path, "BENCH_a.json", wall=3.0)
        return collect_bench_history(tmp_path, include_git=False)

    def test_json_payload(self, history):
        payload = history.to_dict()
        assert payload["schema"] == BENCH_HISTORY_SCHEMA
        entry = payload["benches"]["BENCH_a.json"]["entries"][0]
        assert entry["metrics"]["metrics.campaign.wall_s"] == 3.0
        json.dumps(payload)   # fully serializable

    def test_text_and_markdown_render(self, history):
        text = format_history_text(history)
        assert "BENCH_a.json" in text
        assert "metrics.campaign.wall_s" in text
        markdown = format_history_markdown(history)
        assert markdown.startswith("# Benchmark trajectory")
        assert "`metrics.campaign.wall_s`" in markdown

    def test_metric_filter(self, history):
        filtered = format_history_text(history, metric_filter="calibration")
        assert "calibration_s" in filtered
        assert "wall_s" not in filtered
        with pytest.raises(ObservabilityError, match="no metrics match"):
            format_history_text(history, metric_filter="nonexistent")
