"""Telemetry bus: emission, validation, spans, and the inactive contract."""

import json
import time

import pytest

from repro.core.plan import paper_figure3_plan
from repro.engine import CampaignEngine
from repro.errors import ObservabilityError
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    Telemetry,
    TelemetryEvent,
    validate_event_dict,
    validate_events_file,
)


class TestBus:
    def test_inactive_bus_emits_nothing(self):
        bus = Telemetry()
        assert not bus.active
        assert bus.emit("anything", x=1) is None

    def test_subscriber_activates_the_bus_and_sees_events(self):
        seen = []
        bus = Telemetry()
        bus.subscribe(seen.append)
        assert bus.active
        event = bus.emit("custom", value=7)
        assert seen == [event]
        assert event.kind == "custom"
        assert event.payload == {"value": 7}

    def test_sink_writes_valid_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with Telemetry(path) as bus:
            bus.emit("campaign_start", plan="t", total=2, jobs=1)
            bus.emit("experiment_complete", spec="s", index=0,
                     outcome="correct", wall_s=0.1, completed=1,
                     queue_depth=1)
        assert validate_events_file(path) == 2
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [line["seq"] for line in lines] == [0, 1]
        assert all(line["schema"] == TELEMETRY_SCHEMA for line in lines)

    def test_span_times_its_block(self):
        seen = []
        bus = Telemetry()
        bus.subscribe(seen.append)
        with bus.span("checkpoint", extra="yes"):
            time.sleep(0.01)
        (event,) = seen
        assert event.kind == "span"
        assert event.payload["name"] == "checkpoint"
        assert event.payload["elapsed_s"] >= 0.01
        assert event.payload["extra"] == "yes"

    def test_span_on_inactive_bus_is_a_noop(self):
        with Telemetry().span("nothing"):
            pass

    def test_close_without_subscribers_deactivates(self, tmp_path):
        bus = Telemetry(tmp_path / "events.jsonl")
        bus.emit("campaign_start", plan="t", total=1, jobs=1)
        bus.close()
        assert not bus.active
        assert bus.emit("ignored") is None


class TestValidation:
    def good(self, **overrides):
        event = {"schema": TELEMETRY_SCHEMA, "seq": 0, "ts": 1.0,
                 "kind": "custom", "payload": {}}
        event.update(overrides)
        return event

    def test_unknown_kinds_pass(self):
        validate_event_dict(self.good(kind="plugin_says_hi"))

    def test_wrong_schema_is_rejected(self):
        with pytest.raises(ObservabilityError, match="schema"):
            validate_event_dict(self.good(schema="nope/v9"))

    def test_known_kind_requires_its_payload_fields(self):
        with pytest.raises(ObservabilityError, match="jobs"):
            validate_event_dict(self.good(
                kind="campaign_start", payload={"plan": "p", "total": 1}))

    @pytest.mark.parametrize("missing", ["seq", "ts", "kind"])
    def test_missing_top_level_field_is_rejected(self, missing):
        event = self.good()
        del event[missing]
        with pytest.raises(ObservabilityError, match=missing):
            validate_event_dict(event)

    def test_seq_must_increase_within_a_run(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [
            TelemetryEvent(seq=0, ts=1.0, kind="a").to_json(),
            TelemetryEvent(seq=2, ts=2.0, kind="b").to_json(),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ObservabilityError, match="sequence"):
            validate_events_file(path)

    def test_seq_reset_to_zero_marks_a_new_run(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [
            TelemetryEvent(seq=0, ts=1.0, kind="a").to_json(),
            TelemetryEvent(seq=1, ts=2.0, kind="b").to_json(),
            TelemetryEvent(seq=0, ts=3.0, kind="a").to_json(),
        ]
        path.write_text("\n".join(lines) + "\n")
        assert validate_events_file(path) == 3

    def test_empty_file_is_an_error(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="no events"):
            validate_events_file(path)


class TestFleetKinds:
    """The coordinator's fleet events validate like the engine's own."""

    PAYLOADS = {
        "host_joined": {"host": "w1", "host_id": "h0001"},
        "lease_granted": {"host": "w1", "shard": "ab12", "campaign": "c001",
                          "specs": 2},
        "lease_expired": {"host": "w1", "shard": "ab12", "campaign": "c001",
                          "failures": 1},
        "host_lost": {"host": "w1", "host_id": "h0001"},
        "shard_stolen": {"shard": "ab12", "from_host": "w1", "to_host": "w2"},
        "result_merged": {"campaign": "c001", "shard": "ab12", "host": "h1",
                          "merged": 2, "duplicates": 0,
                          "campaign_merged": 2, "campaign_total": 6},
    }

    def test_every_fleet_kind_validates_with_its_payload(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with Telemetry(path) as bus:
            for kind, payload in self.PAYLOADS.items():
                bus.emit(kind, **payload)
        assert validate_events_file(path) == len(self.PAYLOADS)

    @pytest.mark.parametrize("kind,field", [
        ("host_joined", "host_id"),
        ("lease_granted", "specs"),
        ("lease_expired", "failures"),
        ("host_lost", "host"),
        ("shard_stolen", "to_host"),
        ("result_merged", "duplicates"),
    ])
    def test_missing_required_fields_are_rejected(self, kind, field):
        payload = dict(self.PAYLOADS[kind])
        del payload[field]
        event = {"schema": TELEMETRY_SCHEMA, "seq": 0, "ts": 1.0,
                 "kind": kind, "payload": payload}
        with pytest.raises(ObservabilityError, match=field):
            validate_event_dict(event)


class TestEngineEmission:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("telemetry") / "events.jsonl"
        plan = paper_figure3_plan(num_tests=3, duration=2.0)
        with Telemetry(path) as telemetry:
            result = CampaignEngine(plan, telemetry=telemetry).run()
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        return plan, result, path, events

    def test_file_validates_and_brackets_the_campaign(self, run):
        plan, result, path, events = run
        assert validate_events_file(path) == len(events)
        assert events[0]["kind"] == "campaign_start"
        assert events[-1]["kind"] == "campaign_end"
        assert events[0]["payload"]["total"] == len(plan)
        assert events[-1]["payload"]["completed"] == len(result.results)

    def test_one_complete_event_per_experiment_with_timing_split(self, run):
        plan, result, _, events = run
        completes = [event for event in events
                     if event["kind"] == "experiment_complete"]
        assert len(completes) == len(plan)
        for event in completes:
            payload = event["payload"]
            assert payload["wall_s"] > 0
            assert 0 <= payload["prefix_wall_s"] <= payload["wall_s"]
            assert payload["worker"] is not None
        # Queue depth drains to zero over the campaign.
        assert completes[-1]["payload"]["queue_depth"] == 0

    def test_parallel_campaign_emits_identical_event_count(self, run):
        plan, *_ = run
        seen = []
        telemetry = Telemetry()
        telemetry.subscribe(seen.append)
        CampaignEngine(plan, jobs=2, telemetry=telemetry).run()
        completes = [e for e in seen if e.kind == "experiment_complete"]
        assert len(completes) == len(plan)
        workers = {e.payload["worker"] for e in completes}
        assert len(workers) >= 1   # pids of the pool workers
