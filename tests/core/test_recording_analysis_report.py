"""Tests for record persistence, campaign analytics, and report rendering."""

import pytest

from repro.core.analysis import (
    availability_breakdown,
    convergence_curve,
    group_by,
    grouped_distributions,
    management_summary,
    mean_injections_per_test,
    outcome_distribution,
    register_class_totals,
)
from repro.core.experiment import ExperimentResult
from repro.core.outcomes import ManagementEvidence, Outcome
from repro.core.recording import ExperimentRecord, RecordStore
from repro.core.report import (
    format_comparison,
    format_distribution,
    format_figure3,
    format_management_report,
)
from repro.errors import AnalysisError


def make_record(outcome: Outcome, *, injections: int = 10, seed: int = 0,
                target: str = "arch_handle_trap@cpu{1}",
                intensity: str = "medium",
                create_attempted: bool = False,
                create_succeeded: bool = True,
                register_classes=None) -> ExperimentRecord:
    return ExperimentRecord(
        spec_name=f"test-{seed}",
        outcome=outcome.value,
        rationale="synthetic",
        injections=injections,
        duration=60.0,
        seed=seed,
        scenario="steady_state",
        target=target,
        fault_model="single-bit-flip",
        intensity=intensity,
        register_class_counts=register_classes or {"gpr": injections},
        target_cell_lines=100,
        root_cell_lines=20,
        create_attempted=create_attempted,
        create_succeeded=create_succeeded,
    )


def figure3_like_records():
    records = []
    seed = 0
    for outcome, count in ((Outcome.CORRECT, 13), (Outcome.PANIC_PARK, 6),
                           (Outcome.CPU_PARK, 1)):
        for _ in range(count):
            records.append(make_record(outcome, seed=seed))
            seed += 1
    return records


class TestRecordRoundTrip:
    def test_from_result_copies_fields(self):
        result = ExperimentResult(
            spec_name="x", outcome=Outcome.CPU_PARK, rationale="r",
            injections=3, duration=60.0, seed=1, scenario="steady_state",
            target="t", fault_model="m", intensity="medium",
            register_class_counts={"sp": 3},
            management=ManagementEvidence(create_attempted=True,
                                          create_succeeded=False),
            target_cell_lines=5, root_cell_lines=6, extras={"k": 1},
        )
        record = ExperimentRecord.from_result(result)
        assert record.outcome_enum is Outcome.CPU_PARK
        assert record.register_class_counts == {"sp": 3}
        assert record.create_attempted and not record.create_succeeded
        assert record.extras == {"k": 1}

    def test_json_round_trip(self):
        record = make_record(Outcome.PANIC_PARK, injections=7)
        restored = ExperimentRecord.from_json(record.to_json())
        assert restored == record

    def test_malformed_json_is_rejected(self):
        with pytest.raises(AnalysisError):
            ExperimentRecord.from_json("{not json")
        with pytest.raises(AnalysisError):
            ExperimentRecord.from_json('["list"]')
        with pytest.raises(AnalysisError):
            ExperimentRecord.from_json('{"unknown_field": 1}')
        with pytest.raises(AnalysisError):
            ExperimentRecord.from_json('{"spec_name": "x"}')

    def test_store_write_append_load(self, tmp_path):
        store = RecordStore(tmp_path / "records.jsonl")
        records = figure3_like_records()[:5]
        assert store.write_all(records) == 5
        store.append(make_record(Outcome.CORRECT, seed=99))
        loaded = store.load()
        assert len(loaded) == 6
        assert loaded[-1].seed == 99
        assert len(list(store)) == 6

    def test_loading_a_missing_file_returns_empty(self, tmp_path):
        assert RecordStore(tmp_path / "absent.jsonl").load() == []


class TestAnalysis:
    def test_outcome_distribution_counts_and_cis(self):
        summary = outcome_distribution(figure3_like_records())
        assert summary.total == 20
        assert summary.count(Outcome.CORRECT) == 13
        assert summary.fraction(Outcome.PANIC_PARK) == pytest.approx(0.3)
        share = summary.shares[Outcome.PANIC_PARK]
        assert share.ci_low < 0.3 < share.ci_high
        assert summary.dominant() is Outcome.CORRECT

    def test_empty_distribution(self):
        summary = outcome_distribution([])
        assert summary.total == 0
        assert summary.fraction(Outcome.CORRECT) == 0.0
        with pytest.raises(AnalysisError):
            summary.dominant()

    def test_availability_breakdown_matches_figure3_categories(self):
        breakdown = availability_breakdown(figure3_like_records())
        assert breakdown["correct"] == pytest.approx(0.65)
        assert breakdown["panic_park"] == pytest.approx(0.30)
        assert breakdown["cpu_park"] == pytest.approx(0.05)
        assert breakdown["other"] == pytest.approx(0.0)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_group_by_and_grouped_distributions(self):
        records = [make_record(Outcome.CORRECT, target="A"),
                   make_record(Outcome.PANIC_PARK, target="A", seed=1),
                   make_record(Outcome.CORRECT, target="B", seed=2)]
        groups = group_by(records, "target")
        assert set(groups) == {"A", "B"}
        distributions = grouped_distributions(records, "target")
        assert distributions["A"].total == 2
        with pytest.raises(AnalysisError):
            group_by(records, "nonexistent")

    def test_management_summary(self):
        records = [
            make_record(Outcome.INVALID_ARGUMENTS, create_attempted=True,
                        create_succeeded=False),
            make_record(Outcome.CORRECT, create_attempted=True,
                        create_succeeded=True, seed=1),
            make_record(Outcome.INCONSISTENT_STATE, create_attempted=True,
                        create_succeeded=True, seed=2),
            make_record(Outcome.PANIC_PARK, seed=3),
        ]
        summary = management_summary(records)
        assert summary.create_attempts == 3
        assert summary.create_rejections == 1
        assert summary.rejected_and_not_allocated == 1
        assert summary.inconsistent_states == 1
        assert summary.panics == 1
        assert summary.rejection_rate == pytest.approx(1 / 3)

    def test_register_class_totals_and_mean_injections(self):
        records = [make_record(Outcome.CORRECT, injections=4,
                               register_classes={"gpr": 3, "pc": 1}),
                   make_record(Outcome.CORRECT, injections=6, seed=1,
                               register_classes={"gpr": 6})]
        totals = register_class_totals(records)
        assert totals == {"gpr": 9, "pc": 1}
        assert mean_injections_per_test(records) == pytest.approx(5.0)
        assert mean_injections_per_test([]) == 0.0

    def test_convergence_curve_tracks_running_fraction(self):
        records = figure3_like_records()
        curve = convergence_curve(records, Outcome.CORRECT, [5, 10, 20, 50])
        assert [point[0] for point in curve] == [5, 10, 20, 20]
        final_n, final_fraction, low, high = curve[-1]
        assert final_fraction == pytest.approx(0.65)
        assert low <= final_fraction <= high


class TestReports:
    def test_format_distribution_renders_bars(self):
        text = format_distribution(outcome_distribution(figure3_like_records()),
                                   title="outcomes")
        assert "outcomes" in text
        assert "panic_park" in text
        assert "|" in text and "#" in text

    def test_format_figure3_shows_measured_and_paper_reference(self):
        text = format_figure3(
            figure3_like_records(),
            paper_reference={"correct": 0.63, "panic_park": 0.30, "cpu_park": 0.07},
        )
        assert "Figure 3" in text
        assert "paper" in text
        assert "panic_park" in text
        assert "30.0%" in text

    def test_format_management_report(self):
        records = [make_record(Outcome.INVALID_ARGUMENTS, create_attempted=True,
                               create_succeeded=False)]
        text = format_management_report(records, title="high intensity root")
        assert "high intensity root" in text
        assert "rejected" in text

    def test_format_comparison_table(self):
        groups = {
            "jailhouse": outcome_distribution(figure3_like_records()),
            "bao-like": outcome_distribution([make_record(Outcome.CPU_PARK)]),
        }
        text = format_comparison(groups, title="systems")
        assert "jailhouse" in text and "bao-like" in text
        assert "correct" in text
