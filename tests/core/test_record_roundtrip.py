"""Round-trip, rejection, and persistence tests for experiment records.

Satellite coverage for the engine PR: JSON round-trips must be lossless,
malformed input must fail loudly (the checkpoint layer trusts these
guarantees), and saving records must work even when the output directory does
not exist yet.
"""

import pytest

from repro.core.campaign import Campaign
from repro.core.experiment import ExperimentSpec
from repro.core.plan import TestPlan, paper_figure3_plan
from repro.core.recording import ExperimentRecord, RecordStore
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls
from repro.core.faultmodels import SingleBitFlip
from repro.errors import AnalysisError, CampaignError, PlanError


@pytest.fixture(scope="module")
def campaign_result():
    return Campaign(paper_figure3_plan(num_tests=3, duration=2.0)).run()


@pytest.fixture(scope="module")
def records(campaign_result):
    return campaign_result.to_records()


class TestJsonRoundTrip:
    def test_round_trip_equality(self, records):
        for record in records:
            assert ExperimentRecord.from_json(record.to_json()) == record

    def test_round_trip_through_store(self, records, tmp_path):
        store = RecordStore(tmp_path / "rt.jsonl")
        store.write_all(records)
        assert store.load() == list(records)

    def test_malformed_line_is_rejected(self):
        with pytest.raises(AnalysisError, match="malformed"):
            ExperimentRecord.from_json("{not json")

    def test_non_object_line_is_rejected(self):
        with pytest.raises(AnalysisError, match="JSON object"):
            ExperimentRecord.from_json("[1, 2, 3]")

    def test_unknown_fields_are_rejected(self, records):
        import json
        payload = json.loads(records[0].to_json())
        payload["bogus_field"] = 1
        with pytest.raises(AnalysisError, match="unknown fields"):
            ExperimentRecord.from_json(json.dumps(payload))

    def test_missing_required_fields_are_rejected(self):
        with pytest.raises(AnalysisError, match="missing fields"):
            ExperimentRecord.from_json('{"spec_name": "only-a-name"}')

    def test_to_result_rebuilds_the_result_view(self, campaign_result, records):
        for original, record in zip(campaign_result.results, records):
            rebuilt = record.to_result()
            assert rebuilt.spec_name == original.spec_name
            assert rebuilt.outcome is original.outcome
            assert rebuilt.injections == original.injections
            assert rebuilt.seed == original.seed
            assert rebuilt.register_class_counts == original.register_class_counts
            # And the rebuilt result serializes back to the same record.
            assert ExperimentRecord.from_result(rebuilt) == record


class TestSaveCreatesDirectories:
    def test_campaign_save_into_missing_directory(self, campaign_result, tmp_path):
        target = tmp_path / "out" / "campaigns" / "run.jsonl"
        count = campaign_result.save(str(target))
        assert count == 3
        assert len(RecordStore(target).load()) == 3

    def test_append_into_missing_directory(self, records, tmp_path):
        store = RecordStore(tmp_path / "missing" / "append.jsonl")
        store.append(records[0])
        assert store.load() == [records[0]]


class TestSpecIdentityAndPlanValidation:
    def _spec(self, **overrides):
        base = dict(
            name="spec", target=InjectionTarget.trap_handler(),
            trigger=EveryNCalls(100), fault_model=SingleBitFlip(), seed=7,
        )
        base.update(overrides)
        return ExperimentSpec(**base)

    def test_identity_is_stable_across_instances(self):
        assert self._spec().identity() == self._spec().identity()

    def test_identity_depends_on_seed_and_setup(self):
        base = self._spec()
        assert base.identity() != self._spec(seed=8).identity()
        assert base.identity() != self._spec(duration=5.0).identity()
        assert base.identity() != self._spec(
            trigger=EveryNCalls(50)).identity()

    def test_duplicate_spec_names_raise_plan_error(self):
        plan = TestPlan(name="dup")
        plan.add(self._spec())
        plan.add(self._spec(seed=8))
        with pytest.raises(PlanError, match="duplicate experiment names"):
            plan.validate()

    def test_plan_error_is_a_campaign_error(self):
        assert issubclass(PlanError, CampaignError)
        with pytest.raises(CampaignError):
            TestPlan(name="empty").validate()
