"""Tests for the injector, the monitors, and the outcome classifier."""

import pytest

from repro.core.faultmodels import SingleBitFlip
from repro.core.injection import FaultInjector
from repro.core.monitors import (
    AvailabilityMonitor,
    HypervisorMonitor,
    LogCollector,
)
from repro.core.outcomes import (
    ManagementEvidence,
    Outcome,
    OutcomeClassifier,
    OutcomeEvidence,
)
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls, ProbabilisticTrigger
from repro.errors import InjectionError
from repro.hw.uart import Uart
from repro.hw.clock import SimulationClock
from repro.hypervisor.handlers import HANDLER_HVC, HANDLER_TRAP
from repro.hypervisor.hypercalls import Hypercall


class TestFaultInjector:
    def make_injector(self, *, every: int = 1, cpus=None) -> FaultInjector:
        return FaultInjector(
            target=InjectionTarget.hvc_handler(cpus=cpus),
            trigger=EveryNCalls(every),
            fault_model=SingleBitFlip(),
            seed=3,
        )

    def test_injector_does_nothing_until_armed(self, booted_sut):
        injector = self.make_injector()
        booted_sut.install_injector(injector)
        booted_sut.hypervisor.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        assert injector.injection_count == 0
        assert injector.total_calls >= 1

    def test_armed_injector_corrupts_matching_calls(self, booted_sut):
        injector = self.make_injector()
        booted_sut.install_injector(injector)
        injector.arm()
        booted_sut.hypervisor.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        assert injector.injection_count == 1
        record = injector.records[0]
        assert record.handler == HANDLER_HVC
        assert record.cpu_id == 0
        assert len(record.faults) == 1
        assert "bit" in record.describe()

    def test_cpu_filter_limits_matching_calls(self, booted_sut):
        injector = self.make_injector(cpus={1})
        booted_sut.install_injector(injector)
        injector.arm()
        booted_sut.hypervisor.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        assert injector.matching_calls == 0
        assert injector.injection_count == 0

    def test_trigger_rate_is_respected(self, booted_sut):
        injector = self.make_injector(every=5)
        booted_sut.install_injector(injector)
        injector.arm()
        for _ in range(20):
            booted_sut.hypervisor.issue_hypercall(
                0, int(Hypercall.HYPERVISOR_GET_INFO)
            )
        assert injector.matching_calls == 20
        assert injector.injection_count == 4

    def test_max_injections_cap(self, booted_sut):
        injector = FaultInjector(
            target=InjectionTarget.hvc_handler(),
            trigger=EveryNCalls(1),
            fault_model=SingleBitFlip(),
            max_injections=2,
        )
        booted_sut.install_injector(injector)
        injector.arm()
        for _ in range(5):
            booted_sut.hypervisor.issue_hypercall(
                0, int(Hypercall.HYPERVISOR_GET_INFO)
            )
        assert injector.injection_count == 2

    def test_double_install_rejected_and_uninstall_removes_hooks(self, booted_sut):
        injector = self.make_injector()
        booted_sut.install_injector(injector)
        with pytest.raises(InjectionError):
            injector.install(booted_sut.hypervisor.handlers)
        injector.arm()
        injector.uninstall()
        booted_sut.hypervisor.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        assert injector.total_calls == 0

    def test_reset_clears_records_and_counters(self, booted_sut):
        injector = self.make_injector()
        booted_sut.install_injector(injector)
        injector.arm()
        booted_sut.hypervisor.issue_hypercall(0, int(Hypercall.HYPERVISOR_GET_INFO))
        injector.reset()
        assert injector.injection_count == 0
        assert injector.matching_calls == 0

    def test_invalid_max_injections(self):
        with pytest.raises(InjectionError):
            FaultInjector(
                target=InjectionTarget.hvc_handler(),
                trigger=EveryNCalls(1),
                fault_model=SingleBitFlip(),
                max_injections=0,
            )

    def test_describe_mentions_model_target_trigger(self):
        text = self.make_injector(every=100).describe()
        assert "single-bit-flip" in text
        assert "arch_handle_hvc" in text
        assert "100" in text


class TestMonitors:
    def make_uart_with_traffic(self):
        clock = SimulationClock()
        uart = Uart(clock=lambda: clock.now)
        for step in range(10):
            uart.write_line("FreeRTOS", f"line {step}")
            clock.advance(1.0)
        return uart, clock

    def test_availability_report_counts_lines_in_window(self):
        uart, clock = self.make_uart_with_traffic()
        monitor = AvailabilityMonitor(uart, "FreeRTOS")
        report = monitor.report(0.0, 10.0)
        assert report.lines == 10
        assert report.available
        assert report.lines_per_second == pytest.approx(1.0)
        assert "available" in report.describe()

    def test_silence_is_detected(self):
        uart, clock = self.make_uart_with_traffic()
        clock.advance(30.0)
        monitor = AvailabilityMonitor(uart, "FreeRTOS", silence_threshold=5.0)
        report = monitor.report(0.0, 40.0)
        assert not report.available or report.silent_intervals >= 1
        assert report.longest_silence >= 30.0

    def test_unknown_source_is_silent(self):
        uart, _ = self.make_uart_with_traffic()
        report = AvailabilityMonitor(uart, "ghost").report(0.0, 10.0)
        assert report.lines == 0
        assert not report.available

    def test_hypervisor_monitor_reports_parks_and_panics(self, booted_sut):
        monitor = HypervisorMonitor(booted_sut.hypervisor)
        start = booted_sut.now
        booted_sut.hypervisor.cpu_park(1, "unhandled trap", error_code=0x24)
        observation = monitor.observe(start, booted_sut.now + 1.0)
        assert observation.parked_cpus == ((1, 0x24),)
        assert not observation.panicked
        assert "FreeRTOS" in observation.inconsistent_cells
        booted_sut.hypervisor.panic("boom")
        observation = monitor.observe(start, booted_sut.now + 1.0)
        assert observation.panicked and observation.panic_reason == "boom"

    def test_log_collector_captures_the_serial_log(self, booted_sut):
        collector = LogCollector(booted_sut.board.uart)
        collector.start(booted_sut.now)
        booted_sut.run(1.0)
        log = collector.collect(booted_sut.now)
        assert "FreeRTOS" in log
        assert LogCollector(booted_sut.board.uart).collect(1.0) == ""


def make_evidence(booted_sut, **overrides) -> OutcomeEvidence:
    evidence = booted_sut.evidence(0.0, booted_sut.now + 1.0)
    for key, value in overrides.items():
        setattr(evidence, key, value)
    return evidence


class TestOutcomeClassifier:
    def test_healthy_run_is_correct(self, booted_sut):
        booted_sut.run(5.0)
        evidence = booted_sut.evidence(0.0, booted_sut.now)
        outcome = OutcomeClassifier().classify(evidence)
        assert outcome.outcome is Outcome.CORRECT

    def test_panic_dominates_everything(self, booted_sut):
        booted_sut.run(2.0)
        booted_sut.hypervisor.panic("fault propagated")
        evidence = booted_sut.evidence(0.0, booted_sut.now)
        evidence.management = ManagementEvidence(create_attempted=True,
                                                 create_succeeded=False)
        classified = OutcomeClassifier().classify(evidence)
        assert classified.outcome is Outcome.PANIC_PARK
        assert "propagated" in classified.rationale

    def test_rejected_create_is_invalid_arguments(self, booted_sut):
        booted_sut.run(2.0)
        evidence = booted_sut.evidence(0.0, booted_sut.now)
        evidence.management = ManagementEvidence(
            create_attempted=True, create_succeeded=False, create_code=-22,
        )
        classified = OutcomeClassifier().classify(evidence)
        assert classified.outcome is Outcome.INVALID_ARGUMENTS
        assert "not allocated" in classified.rationale

    def test_parked_cpu_with_error_code_is_cpu_park(self, booted_sut):
        booted_sut.run(1.0)
        start = booted_sut.now
        booted_sut.hypervisor.cpu_park(1, "unhandled trap", error_code=0x24)
        booted_sut.run(6.0)
        evidence = booted_sut.evidence(start, booted_sut.now)
        classified = OutcomeClassifier().classify(evidence)
        assert classified.outcome is Outcome.CPU_PARK
        assert "0x24" in classified.rationale

    def test_running_but_silent_cell_with_online_failure_is_inconsistent(self, booted_sut):
        # Simulate the high-intensity non-root finding: the cell reports
        # RUNNING, its CPU never came online, and the UART stays blank.
        from repro.hypervisor.core import HypervisorEventKind
        cell = booted_sut.hypervisor.cell_by_name("FreeRTOS")
        start = booted_sut.now
        cell.online_cpus.clear()
        booted_sut.freertos.state = booted_sut.freertos.state.__class__.STOPPED
        booted_sut.hypervisor._record(HypervisorEventKind.CPU_ONLINE_FAILED,
                                      cpu_id=1, cell_name="FreeRTOS")
        booted_sut.run(10.0)
        evidence = booted_sut.evidence(start, booted_sut.now)
        classified = OutcomeClassifier().classify(evidence)
        assert classified.outcome is Outcome.INCONSISTENT_STATE

    def test_silent_target_without_any_error_is_silent_failure(self, booted_sut):
        start = booted_sut.now
        booted_sut.freertos.crash("latent corruption")
        booted_sut.run(10.0)
        evidence = booted_sut.evidence(start, booted_sut.now)
        classified = OutcomeClassifier().classify(evidence)
        assert classified.outcome is Outcome.SILENT_FAILURE

    def test_outcome_properties(self):
        assert Outcome.PANIC_PARK.is_failure
        assert Outcome.PANIC_PARK.violates_isolation
        assert not Outcome.CPU_PARK.violates_isolation
        assert not Outcome.CORRECT.is_failure

    def test_management_merge_attempt_aggregates(self):
        aggregate = ManagementEvidence()
        ok = ManagementEvidence(create_attempted=True, create_succeeded=True,
                                start_attempted=True, start_succeeded=True)
        bad = ManagementEvidence(create_attempted=True, create_succeeded=False,
                                 create_code=-22)
        aggregate.merge_attempt(ok)
        aggregate.merge_attempt(bad)
        aggregate.merge_attempt(ok)
        assert aggregate.create_attempts == 3
        assert aggregate.create_rejections == 1
        assert not aggregate.create_succeeded
        assert aggregate.create_code == -22
        assert aggregate.start_attempts == 2
        assert aggregate.start_rejections == 0
