"""Tests for the repro-fi command-line front-end."""

import pytest

from repro.cli import build_parser, main
from repro.core.recording import RecordStore


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults_of_the_campaign_subcommand(self):
        args = build_parser().parse_args(["campaign"])
        assert args.intensity == "medium"
        assert args.handler == "arch_handle_trap"
        assert args.cpu == 1
        assert args.scenario == "steady-state"

    def test_unknown_choice_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--intensity", "extreme"])


class TestGolden:
    def test_golden_run_reports_handler_calls(self, capsys):
        code, out, _ = run_cli(capsys, "golden", "--duration", "5")
        assert code == 0
        assert "handler calls" in out
        assert "arch_handle_trap" in out


class TestFig3AndCampaign:
    def test_fig3_prints_the_figure_and_saves_records(self, capsys, tmp_path):
        output = tmp_path / "fig3.jsonl"
        code, out, _ = run_cli(
            capsys, "fig3", "--tests", "3", "--duration", "5",
            "--output", str(output),
        )
        assert code == 0
        assert "Figure 3" in out
        assert "paper" in out
        assert len(RecordStore(output).load()) == 3

    def test_custom_campaign_runs_and_reports(self, capsys, tmp_path):
        output = tmp_path / "campaign.jsonl"
        code, out, _ = run_cli(
            capsys, "campaign", "--tests", "2", "--duration", "5",
            "--handler", "arch_handle_trap", "--cpu", "1",
            "--output", str(output), "--verbose",
        )
        assert code == 0
        assert "Campaign:" in out
        assert "outcomes" in out
        assert len(RecordStore(output).load()) == 2

    def test_negative_cpu_disables_the_filter(self, capsys):
        code, out, _ = run_cli(
            capsys, "campaign", "--tests", "2", "--duration", "3", "--cpu", "-1",
        )
        assert code == 0


class TestReportAndSeooc:
    @pytest.fixture
    def saved_records(self, capsys, tmp_path):
        output = tmp_path / "records.jsonl"
        run_cli(capsys, "fig3", "--tests", "3", "--duration", "5",
                "--output", str(output))
        return output

    def test_report_styles(self, capsys, saved_records):
        for style in ("distribution", "figure3", "management"):
            code, out, _ = run_cli(capsys, "report", str(saved_records),
                                   "--style", style)
            assert code == 0
            assert out.strip()

    def test_report_on_missing_file_fails(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "report", str(tmp_path / "nope.jsonl"))
        assert code == 1
        assert "no records" in err

    def test_seooc_builds_an_evidence_report(self, capsys, saved_records):
        code, out, _ = run_cli(capsys, "seooc", str(saved_records))
        assert code in (0, 2)   # ready or not, depending on observed outcomes
        assert "SEooC assessment evidence" in out
        assert "Assumptions of use" in out

    def test_seooc_with_no_usable_files_fails(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "seooc", str(tmp_path / "empty.jsonl"))
        assert code == 1
