"""Tests for the repro-fi command-line front-end."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.core.recording import RecordStore

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults_of_the_campaign_subcommand(self):
        args = build_parser().parse_args(["campaign"])
        assert args.intensity == "medium"
        assert args.handler == "arch_handle_trap"
        assert args.cpu == 1
        assert args.scenario == "steady-state"

    def test_unknown_choice_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--intensity", "extreme"])

    def test_check_subcommand_smoke(self, capsys):
        # The contract checker is part of the frontend: clean tree, exit 0.
        code, out, _ = run_cli(capsys, "check")
        assert code == 0
        assert "0 finding(s)" in out


class TestGolden:
    def test_golden_run_reports_handler_calls(self, capsys):
        code, out, _ = run_cli(capsys, "golden", "--duration", "5")
        assert code == 0
        assert "handler calls" in out
        assert "arch_handle_trap" in out


class TestFig3AndCampaign:
    def test_fig3_prints_the_figure_and_saves_records(self, capsys, tmp_path):
        output = tmp_path / "fig3.jsonl"
        code, out, _ = run_cli(
            capsys, "fig3", "--tests", "3", "--duration", "5",
            "--output", str(output),
        )
        assert code == 0
        assert "Figure 3" in out
        assert "paper" in out
        assert len(RecordStore(output).load()) == 3

    def test_custom_campaign_runs_and_reports(self, capsys, tmp_path):
        output = tmp_path / "campaign.jsonl"
        code, out, _ = run_cli(
            capsys, "campaign", "--tests", "2", "--duration", "5",
            "--handler", "arch_handle_trap", "--cpu", "1",
            "--output", str(output), "--verbose",
        )
        assert code == 0
        assert "Campaign:" in out
        assert "outcomes" in out
        assert len(RecordStore(output).load()) == 2

    def test_negative_cpu_disables_the_filter(self, capsys):
        code, out, _ = run_cli(
            capsys, "campaign", "--tests", "2", "--duration", "3", "--cpu", "-1",
        )
        assert code == 0


class TestReportAndSeooc:
    @pytest.fixture
    def saved_records(self, capsys, tmp_path):
        output = tmp_path / "records.jsonl"
        run_cli(capsys, "fig3", "--tests", "3", "--duration", "5",
                "--output", str(output))
        return output

    def test_report_styles(self, capsys, saved_records):
        for style in ("distribution", "figure3", "management"):
            code, out, _ = run_cli(capsys, "report", str(saved_records),
                                   "--style", style)
            assert code == 0
            assert out.strip()

    def test_report_on_missing_file_fails(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "report", str(tmp_path / "nope.jsonl"))
        assert code == 1
        assert "no records" in err

    def test_seooc_builds_an_evidence_report(self, capsys, saved_records):
        code, out, _ = run_cli(capsys, "seooc", str(saved_records))
        assert code in (0, 2)   # ready or not, depending on observed outcomes
        assert "SEooC assessment evidence" in out
        assert "Assumptions of use" in out

    def test_seooc_with_no_usable_files_fails(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "seooc", str(tmp_path / "empty.jsonl"))
        assert code == 1

    def test_seooc_with_one_missing_path_fails_naming_it(
            self, capsys, saved_records, tmp_path):
        """A typo'd path must never silently drop a campaign from the
        certification evidence: every bad path is a hard error."""
        missing = tmp_path / "typo.jsonl"
        code, out, err = run_cli(capsys, "seooc", str(saved_records),
                                 str(missing))
        assert code == 1
        assert str(missing) in err
        assert "SEooC assessment evidence" not in out

    def test_seooc_with_an_empty_file_fails_naming_it(
            self, capsys, saved_records, tmp_path):
        empty = tmp_path / "zero.jsonl"
        empty.write_text("")
        code, _, err = run_cli(capsys, "seooc", str(saved_records), str(empty))
        assert code == 1
        assert str(empty) in err

    def test_seooc_rejects_the_same_file_given_twice(
            self, capsys, saved_records):
        """The same campaign under two names would double-count every test
        in the certification evidence."""
        code, out, err = run_cli(capsys, "seooc", str(saved_records),
                                 str(saved_records))
        assert code == 1
        assert "more than once" in err
        assert "SEooC assessment evidence" not in out

    def test_analyze_matches_report_on_real_campaign_records(
            self, capsys, saved_records):
        code, report_out, _ = run_cli(capsys, "report", str(saved_records))
        assert code == 0
        code, analyze_out, _ = run_cli(capsys, "analyze", str(saved_records))
        assert code == 0
        assert analyze_out == report_out

    def test_analyze_group_by_and_json_on_real_records(
            self, capsys, saved_records):
        code, out, _ = run_cli(capsys, "analyze", str(saved_records),
                               "--group-by", "scenario")
        assert code == 0
        assert "grouped by scenario" in out
        code, out, _ = run_cli(capsys, "analyze", str(saved_records),
                               "--format", "json")
        assert code == 0
        import json
        assert json.loads(out)["total"] == 3

    def test_compare_two_real_campaigns(self, capsys, saved_records, tmp_path):
        other = tmp_path / "other.jsonl"
        run_cli(capsys, "fig3", "--tests", "2", "--duration", "5",
                "--seed", "11", "--output", str(other))
        code, out, _ = run_cli(capsys, "compare", str(saved_records),
                               str(other))
        assert code == 0
        assert "records" in out and "other" in out
        assert "per-outcome delta vs records" in out


class TestScenarios:
    def test_park_and_recover_is_reachable_from_the_cli(self, capsys):
        code, out, _ = run_cli(
            capsys, "campaign", "--scenario", "park-and-recover",
            "--tests", "1", "--duration", "3",
        )
        assert code == 0
        assert "Campaign:" in out

    def test_every_registered_scenario_is_a_parser_choice(self):
        from repro.core.registry import SCENARIOS
        args = build_parser().parse_args(
            ["campaign", "--scenario", "park-and-recover"])
        assert args.scenario == "park-and-recover"
        for key in SCENARIOS.keys():
            build_parser().parse_args(["campaign", "--scenario", key])


class TestSutSelection:
    @pytest.mark.parametrize("sut", ["jailhouse", "bao-like", "no-isolation"])
    def test_campaign_accepts_every_registered_sut(self, capsys, sut):
        code, out, _ = run_cli(
            capsys, "campaign", "--tests", "1", "--duration", "3",
            "--sut", sut,
        )
        assert code == 0

    def test_unknown_sut_fails_with_a_suggestion(self, capsys):
        code, _, err = run_cli(
            capsys, "campaign", "--tests", "1", "--duration", "3",
            "--sut", "jalhouse",
        )
        assert code == 2
        assert "jailhouse" in err

    def test_golden_runs_against_a_baseline_sut(self, capsys):
        code, out, _ = run_cli(capsys, "golden", "--duration", "3",
                               "--sut", "bao-like")
        assert code == 0
        assert "handler calls" in out


class TestRunAndList:
    def test_run_executes_a_toml_config(self, capsys, tmp_path):
        output = tmp_path / "run.jsonl"
        code, out, _ = run_cli(
            capsys, "run", str(EXAMPLES / "campaign_fig3.toml"),
            "--tests", "2", "--duration", "2", "--output", str(output),
        )
        assert code == 0
        assert "Campaign:" in out
        assert len(RecordStore(output).load()) == 2

    def test_run_executes_a_catalog_entry_by_name(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "fig3", "--tests", "1", "--duration", "2",
        )
        assert code == 0
        assert "Campaign:" in out

    def test_run_with_sut_override(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "fig3", "--tests", "1", "--duration", "2",
            "--sut", "no-isolation",
        )
        assert code == 0

    def test_run_rejects_unknown_config_with_catalog_hint(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig33")
        assert code == 2
        assert "fig3" in err

    def test_run_config_with_bad_part_key_reports_suggestion(self, capsys, tmp_path):
        config = tmp_path / "bad.toml"
        config.write_text(
            '[campaign]\nname = "bad"\nintensity = "medium"\n'
            '[[target]]\nkind = "nonroot-trp"\n'
        )
        code, _, err = run_cli(capsys, "run", str(config),
                               "--tests", "1", "--duration", "2")
        assert code == 2
        assert "nonroot-trap" in err

    def test_fig3_checkpoint_resumes_under_run(self, capsys, tmp_path):
        """The acceptance scenario: a checkpoint written by ``fig3`` is
        resumed by ``run`` on the equivalent declarative config."""
        ck = tmp_path / "ck.jsonl"
        code, _, _ = run_cli(
            capsys, "fig3", "--tests", "2", "--duration", "2",
            "--resume", str(ck),
        )
        assert code == 0
        assert len(RecordStore(ck).load()) == 2
        before = ck.read_text()
        code, out, _ = run_cli(
            capsys, "run", str(EXAMPLES / "campaign_fig3.toml"),
            "--tests", "2", "--duration", "2", "--resume", str(ck),
        )
        assert code == 0
        # Every spec was restored from the checkpoint; nothing re-ran, so
        # the record file is byte-identical.
        assert ck.read_text() == before

    def test_run_tests_override_shrinks_a_random_sampling_config(
            self, capsys, tmp_path):
        output = tmp_path / "rnd.jsonl"
        code, _, _ = run_cli(
            capsys, "run", str(EXAMPLES / "campaign_random_sample.json"),
            "--tests", "1", "--duration", "2", "--output", str(output),
        )
        assert code == 0
        assert len(RecordStore(output).load()) == 1

    def test_run_rejects_duplicate_scenarios_without_a_traceback(
            self, capsys, tmp_path):
        config = tmp_path / "dup.toml"
        config.write_text(
            '[campaign]\nname = "dup"\nintensity = "medium"\n'
            'scenario = ["steady-state", "steady_state"]\n'
            '[[target]]\nkind = "nonroot-trap"\n'
        )
        code, _, err = run_cli(capsys, "run", str(config))
        assert code == 2
        assert "more than once" in err

    def test_list_shows_registries_and_catalog(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        for expected in ("fig3", "park-and-recover", "jailhouse", "bao-like",
                         "no-isolation", "single-bit-flip", "every-n-calls",
                         "nonroot-trap", "catalog", "linux", "freertos",
                         "paper"):
            assert expected in out


class TestPrefixCacheAndChunkSizeFlags:
    def test_prefix_cache_flag_reports_counters(self, capsys):
        code, out, err = run_cli(
            capsys, "campaign", "--tests", "2", "--duration", "2",
            "--prefix-cache",
        )
        assert code == 0
        # Diagnostics live on stderr so stdout stays pipeable.
        assert "prefix cache:" in err
        assert "misses" in err
        assert "prefix cache:" not in out

    def test_no_prefix_cache_overrides_a_config_that_enables_it(
            self, capsys, tmp_path):
        config = tmp_path / "cached.toml"
        config.write_text(
            '[campaign]\nname = "cached"\nintensity = "medium"\n'
            'tests = 2\nduration = 2.0\nprefix_cache = true\n'
            '[[target]]\nkind = "nonroot-trap"\n'
        )
        code, _, err = run_cli(capsys, "run", str(config))
        assert code == 0
        assert "prefix cache:" in err
        code, _, err = run_cli(capsys, "run", str(config),
                               "--no-prefix-cache")
        assert code == 0
        assert "prefix cache:" not in err

    def test_chunk_size_accepts_auto_and_integers(self, capsys):
        for value in ("auto", "2"):
            code, _, _ = run_cli(
                capsys, "campaign", "--tests", "2", "--duration", "2",
                "--jobs", "2", "--chunk-size", value,
            )
            assert code == 0

    def test_chunk_size_rejects_garbage_without_a_traceback(self, capsys):
        code, _, err = run_cli(
            capsys, "campaign", "--tests", "2", "--duration", "2",
            "--chunk-size", "lots",
        )
        assert code == 2
        assert "--chunk-size" in err

    def test_config_chunk_size_is_validated(self, capsys, tmp_path):
        config = tmp_path / "badchunk.toml"
        config.write_text(
            '[campaign]\nname = "badchunk"\nintensity = "medium"\n'
            'chunk_size = "sometimes"\n'
            '[[target]]\nkind = "nonroot-trap"\n'
        )
        code, _, err = run_cli(capsys, "run", str(config))
        assert code == 2
        assert "chunk_size" in err


class TestObservabilityFlags:
    def test_progress_goes_to_stderr_not_stdout(self, capsys):
        code, out, err = run_cli(
            capsys, "campaign", "--tests", "3", "--duration", "2",
            "--verbose",
        )
        assert code == 0
        assert "failure rate" in err          # live progress lines
        assert "tests/s" in err
        assert "[   1/3]" not in out          # no progress interleaved
        assert "Campaign:" in out             # the report stays on stdout

    def test_progress_interval_throttles_but_final_line_prints(self, capsys):
        code, _, err = run_cli(
            capsys, "campaign", "--tests", "4", "--duration", "2",
            "--verbose", "--progress-interval", "3600",
        )
        assert code == 0
        progress = [line for line in err.splitlines() if "tests/s" in line]
        # First completion opens the interval window; the final one always
        # prints; everything in between is throttled away.
        assert len(progress) == 2
        assert "[   4/4]" in progress[-1]

    def test_telemetry_flag_writes_a_valid_event_file(self, capsys, tmp_path):
        from repro.obs.telemetry import validate_events_file

        events = tmp_path / "events.jsonl"
        code, _, _ = run_cli(
            capsys, "campaign", "--tests", "3", "--duration", "2",
            "--jobs", "2", "--telemetry", str(events),
        )
        assert code == 0
        assert validate_events_file(events) == 3 + 2   # starts/ends bracket

    def test_watch_flag_announces_the_dashboard_url(self, capsys):
        import re

        code, _, err = run_cli(
            capsys, "fig3", "--tests", "2", "--duration", "2",
            "--watch", "--watch-linger", "0",
        )
        assert code == 0
        assert re.search(r"watch dashboard: http://127\.0\.0\.1:\d+", err)

    def test_watch_subcommand_tails_a_record_file(self, capsys, tmp_path):
        records = tmp_path / "records.jsonl"
        run_cli(capsys, "fig3", "--tests", "2", "--duration", "2",
                "--output", str(records))
        code, out, err = run_cli(
            capsys, "watch", str(records), "--total", "2", "--timeout", "10",
            "--poll", "0.05",
        )
        assert code == 0
        assert "watch dashboard:" in err
        assert "campaign: 2/" in out          # final summary on stdout

    def test_watch_subcommand_empty_file_fails(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "watch", str(tmp_path / "never.jsonl"),
            "--timeout", "0.2", "--poll", "0.05",
        )
        assert code == 1
        assert "no records observed" in err


class TestBenchHistoryCommand:
    @pytest.fixture
    def bench_root(self, tmp_path):
        import json
        (tmp_path / "BENCH_x.json").write_text(json.dumps({
            "schema": "bench_x/v1", "scale": "full",
            "metrics": {"campaign": {"wall_s": 2.0}},
        }))
        return tmp_path

    def test_text_output(self, capsys, bench_root):
        code, out, _ = run_cli(capsys, "bench-history",
                               "--root", str(bench_root), "--no-git")
        assert code == 0
        assert "BENCH_x.json" in out
        assert "metrics.campaign.wall_s" in out

    def test_json_output(self, capsys, bench_root):
        import json
        code, out, _ = run_cli(capsys, "bench-history",
                               "--root", str(bench_root), "--no-git",
                               "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["schema"] == "repro-bench-history/v1"

    def test_empty_root_is_a_clean_error(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "bench-history",
                               "--root", str(tmp_path), "--no-git")
        assert code == 1
        assert "no benchmark reports" in err

    def test_repo_history_renders(self, capsys):
        # Against the real repo: three committed BENCH files.
        code, out, _ = run_cli(capsys, "bench-history",
                               "--root", str(EXAMPLES.parent))
        assert code == 0
        assert "BENCH_hotpath.json" in out


class TestSupervisionFlags:
    def test_engine_flags_parse(self):
        args = build_parser().parse_args([
            "fig3", "--tests", "2", "--timeout", "5.5", "--retries", "2",
            "--max-worker-restarts", "3", "--flush-interval", "1.5",
        ])
        assert args.timeout == 5.5
        assert args.retries == 2
        assert args.max_worker_restarts == 3
        assert args.flush_interval == 1.5

    def test_supervision_flags_default_to_unset(self):
        args = build_parser().parse_args(["fig3", "--tests", "2"])
        assert args.timeout is None
        assert args.retries is None
        assert args.max_worker_restarts is None
        assert args.flush_interval == 0.0

    def test_fig3_runs_supervised_with_explicit_knobs(self, capsys, tmp_path):
        output = tmp_path / "records.jsonl"
        code = main(["fig3", "--tests", "2", "--duration", "2",
                     "--timeout", "30", "--retries", "1",
                     "--output", str(output)])
        assert code == 0
        assert len(RecordStore(output).load()) == 2


class TestTailLines:
    def _collect(self, generator, count):
        return [next(generator) for _ in range(count)]

    def test_yields_only_complete_lines(self, tmp_path):
        import time as _time
        from repro.cli import _tail_lines
        path = tmp_path / "records.jsonl"
        path.write_text("one\ntwo\npartial")
        lines = list(_tail_lines(path, poll_s=0.01,
                                 deadline=_time.monotonic()))
        assert lines == ["one", "two"]

    def test_shrunk_file_reseeks_to_start_and_reports(self, tmp_path):
        import time as _time
        from repro.cli import _tail_lines
        path = tmp_path / "records.jsonl"
        path.write_text("one\ntwo\n")
        rotations = []
        stream = _tail_lines(path, poll_s=0.01,
                             deadline=_time.monotonic() + 10,
                             on_rotate=lambda offset, size:
                                 rotations.append((offset, size)))
        assert self._collect(stream, 2) == ["one", "two"]
        # The writer rotates: the file is replaced by a shorter one. The
        # tailer must notice the shrink, restart from offset 0, and report.
        path.write_text("new\n")
        assert next(stream) == "new"
        stream.close()
        assert rotations == [(8, 4)]

    def test_shrink_discards_the_partial_line_buffer(self, tmp_path):
        import time as _time
        from repro.cli import _tail_lines
        path = tmp_path / "records.jsonl"
        path.write_text("complete\ntorn-prefix")
        stream = _tail_lines(path, poll_s=0.01,
                             deadline=_time.monotonic() + 10)
        assert next(stream) == "complete"
        path.write_text("fresh\n")
        # The torn prefix of the old file must not be glued onto the new
        # file's first line.
        assert next(stream) == "fresh"
        stream.close()
