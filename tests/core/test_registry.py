"""Tests for the plugin registries behind the declarative campaign layer."""

import pickle

import pytest

from repro.baselines import BaoLikeSUT, NoIsolationSUT
from repro.core.experiment import Scenario
from repro.core.faultmodels import MultiRegisterBitFlip, SingleBitFlip
from repro.core.registry import (
    CLASSIFIERS,
    FAULT_MODELS,
    GUESTS,
    Registry,
    RegistrySutFactory,
    SCENARIOS,
    SUTS,
    TARGETS,
    TRIGGERS,
    WORKLOADS,
    resolve_sut_factory,
)
from repro.core.sut import JailhouseSUT
from repro.core.triggers import EveryNCalls
from repro.errors import RegistryError
from repro.hw.registers import RegisterClass


class TestBuiltinKeys:
    def test_every_registry_has_its_builtin_keys(self):
        assert {"single-bit-flip", "multi-register-bit-flip",
                "register-class-bit-flip", "multi-bit-burst",
                "stuck-at"} <= set(FAULT_MODELS.keys())
        assert {"every-n-calls", "probabilistic", "one-shot",
                "burst"} <= set(TRIGGERS.keys())
        assert {"trap", "hvc", "irqchip", "hvc+trap", "nonroot-trap",
                "handlers"} <= set(TARGETS.keys())
        assert {"steady-state", "lifecycle", "repeated-lifecycle",
                "park-and-recover"} <= set(SCENARIOS.keys())
        assert {"jailhouse", "bao-like", "no-isolation"} <= set(SUTS.keys())
        assert "default" in CLASSIFIERS.keys()
        assert {"linux", "freertos"} <= set(GUESTS.keys())
        assert "paper" in WORKLOADS.keys()

    def test_build_returns_configured_parts(self):
        trigger = TRIGGERS.build("every-n-calls", n=100)
        assert isinstance(trigger, EveryNCalls) and trigger.n == 100
        model = FAULT_MODELS.build("multi-register-bit-flip", count=3)
        assert isinstance(model, MultiRegisterBitFlip) and model.count == 3
        target = TARGETS.build("nonroot-trap")
        assert target.describe() == "arch_handle_trap@cpu1 (non-root cell)"
        assert SCENARIOS.build("park-and-recover") is Scenario.PARK_AND_RECOVER

    def test_register_class_flip_accepts_string_class_names(self):
        model = FAULT_MODELS.build("register-class-bit-flip", target_class="sp")
        assert model.target_class is RegisterClass.STACK_POINTER

    def test_aliases_resolve_to_the_canonical_builder(self):
        assert SCENARIOS.build("steady_state") is Scenario.STEADY_STATE
        assert isinstance(SUTS.build("bao", seed=1), BaoLikeSUT)
        # Aliases are not listed as keys of their own.
        assert "bao" not in SUTS.keys()


class TestErrors:
    def test_unknown_key_raises_with_a_suggestion(self):
        with pytest.raises(RegistryError) as excinfo:
            FAULT_MODELS.build("single-bitflip")
        assert "single-bit-flip" in str(excinfo.value)
        assert "Did you mean" in str(excinfo.value)

    def test_unknown_key_without_a_close_match_lists_the_registry(self):
        with pytest.raises(RegistryError) as excinfo:
            TRIGGERS.get("zzzz")
        assert "every-n-calls" in str(excinfo.value)

    def test_bad_params_raise_registry_error_naming_the_key(self):
        with pytest.raises(RegistryError) as excinfo:
            TRIGGERS.build("every-n-calls", interval=10)
        assert "every-n-calls" in str(excinfo.value)

    def test_duplicate_registration_is_rejected(self):
        registry = Registry("thing")
        registry.add("a", lambda: 1)
        with pytest.raises(RegistryError):
            registry.add("a", lambda: 2)
        with pytest.raises(RegistryError):
            registry.add("b", lambda: 3, aliases=("a",))

    def test_failed_registration_leaves_the_registry_untouched(self):
        registry = Registry("thing")
        registry.add("a", lambda: 1)
        with pytest.raises(RegistryError):
            registry.add("b", lambda: 3, aliases=("a",))
        # The rejected key must not be half-registered: not listed, not
        # resolvable, and re-registrable under a non-colliding spelling.
        assert registry.keys() == ["a"]
        with pytest.raises(RegistryError):
            registry.get("b")
        registry.add("b", lambda: 3)
        assert registry.build("b") == 3

    def test_empty_key_is_rejected(self):
        registry = Registry("thing")
        with pytest.raises(RegistryError):
            registry.add("", lambda: 1)


class TestSutFactories:
    @pytest.mark.parametrize("key,sut_class", [
        ("jailhouse", JailhouseSUT),
        ("bao-like", BaoLikeSUT),
        ("no-isolation", NoIsolationSUT),
    ])
    def test_every_sut_variant_is_buildable_by_name(self, key, sut_class):
        factory = RegistrySutFactory(key)
        sut = factory(seed=42)
        assert type(sut) is sut_class
        assert sut.config.seed == 42

    def test_factory_pickles_by_value(self):
        factory = RegistrySutFactory("bao-like")
        clone = pickle.loads(pickle.dumps(factory))
        assert clone.key == "bao-like"
        assert isinstance(clone(seed=7), BaoLikeSUT)

    def test_factory_params_reach_the_sut_config(self):
        factory = RegistrySutFactory("jailhouse", {"timestep": 0.05})
        assert factory(seed=0).config.timestep == 0.05

    def test_unknown_sut_key_fails_eagerly_in_the_parent(self):
        with pytest.raises(RegistryError) as excinfo:
            RegistrySutFactory("jalhouse")
        assert "jailhouse" in str(excinfo.value)

    def test_resolve_passes_callables_through(self):
        def factory(seed):
            return None
        assert resolve_sut_factory(factory) is factory
        assert isinstance(resolve_sut_factory("jailhouse"), RegistrySutFactory)
        with pytest.raises(RegistryError):
            resolve_sut_factory(42)


class TestDescribe:
    def test_describe_emits_one_line_per_key(self):
        lines = SUTS.describe()
        assert len(lines) == len(SUTS.keys())
        assert any(line.startswith("jailhouse") for line in lines)
