"""Tests for test plans, single experiments, and campaign orchestration."""

import pytest

from repro.core.campaign import Campaign, CampaignResult
from repro.core.experiment import (
    Experiment,
    ExperimentSpec,
    PAPER_TEST_DURATION,
    Scenario,
    park_provoking_spec,
)
from repro.core.faultmodels import MultiRegisterBitFlip, SingleBitFlip
from repro.core.outcomes import Outcome
from repro.core.plan import (
    IntensityLevel,
    TestPlan,
    build_custom_plan,
    build_intensity_plan,
    paper_figure3_plan,
    paper_high_intensity_nonroot_plan,
    paper_high_intensity_root_plan,
)
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls, ProbabilisticTrigger
from repro.errors import CampaignError


class TestIntensityLevels:
    def test_paper_intensity_parameters(self):
        # Medium: single register, once every 100 calls. High: multiple
        # registers, once every 50 calls.
        assert IntensityLevel.MEDIUM.call_interval == 100
        assert IntensityLevel.HIGH.call_interval == 50
        assert isinstance(IntensityLevel.MEDIUM.build_fault_model(), SingleBitFlip)
        assert isinstance(IntensityLevel.HIGH.build_fault_model(), MultiRegisterBitFlip)

    def test_triggers_match_the_interval(self):
        trigger = IntensityLevel.MEDIUM.build_trigger()
        assert isinstance(trigger, EveryNCalls)
        assert trigger.n == 100


class TestPlans:
    def test_intensity_plan_has_unique_seeded_specs(self):
        plan = build_intensity_plan(
            IntensityLevel.MEDIUM, InjectionTarget.nonroot_cpu_trap(),
            num_tests=10, duration=5.0, base_seed=100,
        )
        assert len(plan) == 10
        seeds = [spec.seed for spec in plan]
        assert seeds == list(range(100, 110))
        names = [spec.name for spec in plan]
        assert len(set(names)) == 10
        plan.validate()

    def test_plan_validation_rejects_empty_and_duplicates(self):
        with pytest.raises(CampaignError):
            build_intensity_plan(IntensityLevel.MEDIUM,
                                 InjectionTarget.trap_handler(), num_tests=0)
        plan = TestPlan(name="dup")
        spec = ExperimentSpec(
            name="same", target=InjectionTarget.trap_handler(),
            trigger=EveryNCalls(10), fault_model=SingleBitFlip(),
        )
        plan.add(spec)
        plan.add(spec)
        with pytest.raises(CampaignError):
            plan.validate()

    def test_paper_plans_have_the_right_shape(self):
        fig3 = paper_figure3_plan(num_tests=3)
        assert all(spec.duration == PAPER_TEST_DURATION for spec in fig3)
        assert all(spec.scenario is Scenario.STEADY_STATE for spec in fig3)
        assert all(spec.intensity == "medium" for spec in fig3)
        root = paper_high_intensity_root_plan(num_tests=2)
        assert all(spec.scenario is Scenario.REPEATED_LIFECYCLE for spec in root)
        nonroot = paper_high_intensity_nonroot_plan(num_tests=2)
        assert all(spec.scenario is Scenario.LIFECYCLE_UNDER_FAULT for spec in nonroot)
        assert all(spec.intensity == "high" for spec in nonroot)

    def test_custom_plan_builder(self):
        plan = build_custom_plan(
            "ablation", InjectionTarget.irqchip_handler(),
            trigger_factory=lambda: ProbabilisticTrigger(0.01),
            fault_model_factory=SingleBitFlip,
            num_tests=4, duration=2.0, intensity="ablation",
        )
        assert len(plan) == 4
        assert all(spec.intensity == "ablation" for spec in plan)

    def test_describe_summarizes_the_plan(self):
        plan = paper_figure3_plan(num_tests=8, duration=1.0)
        text = plan.describe()
        assert "8 experiments" in text
        assert "..." in text


class TestExperiment:
    def test_steady_state_without_faults_is_correct(self):
        spec = ExperimentSpec(
            name="golden-ish", target=InjectionTarget.nonroot_cpu_trap(),
            trigger=EveryNCalls(10_000_000), fault_model=SingleBitFlip(),
            duration=5.0, seed=7, intensity="medium",
        )
        result = Experiment(spec).run()
        assert result.outcome is Outcome.CORRECT
        assert result.injections == 0
        assert result.target_cell_lines > 0
        assert result.scenario == "steady_state"

    def test_aggressive_injection_produces_a_failure(self):
        spec = ExperimentSpec(
            name="aggressive", target=InjectionTarget.nonroot_cpu_trap(),
            trigger=EveryNCalls(2), fault_model=MultiRegisterBitFlip(count=6),
            duration=20.0, seed=11, intensity="high",
        )
        result = Experiment(spec).run()
        assert result.outcome.is_failure
        assert result.injections > 0
        assert result.register_class_counts

    def test_results_are_reproducible_for_the_same_seed(self):
        def run(seed: int):
            spec = ExperimentSpec(
                name="repro", target=InjectionTarget.nonroot_cpu_trap(),
                trigger=EveryNCalls(50), fault_model=SingleBitFlip(),
                duration=10.0, seed=seed, intensity="medium",
            )
            result = Experiment(spec).run()
            return result.outcome, result.injections

        assert run(123) == run(123)

    def test_park_and_recover_scenario_reports_isolation(self):
        result = Experiment(park_provoking_spec(seed=5, duration=30.0)).run()
        assert result.scenario == "park_and_recover"
        assert "isolation_preserved" in result.extras
        if result.outcome is Outcome.CPU_PARK:
            assert result.extras["park_observed"]
            assert result.extras["destroy_returned_resources"]

    def test_lifecycle_under_fault_reports_management_evidence(self):
        spec = ExperimentSpec(
            name="lifecycle", target=InjectionTarget.hvc_and_trap(cpus={1}),
            trigger=EveryNCalls(50), fault_model=MultiRegisterBitFlip(count=4),
            scenario=Scenario.LIFECYCLE_UNDER_FAULT,
            duration=10.0, observe_time=5.0, seed=2024, intensity="high",
        )
        result = Experiment(spec).run()
        assert result.management is not None
        assert result.management.create_attempted
        assert "create_succeeded" in result.extras


class TestCampaign:
    def small_plan(self, n: int = 3) -> TestPlan:
        return paper_figure3_plan(num_tests=n, duration=5.0, base_seed=50)

    def test_campaign_runs_every_spec(self):
        result = Campaign(self.small_plan()).run()
        assert len(result) == 3
        assert sum(result.outcome_counts().values()) == 3
        assert 0.0 <= result.failure_rate() <= 1.0

    def test_outcome_distribution_sums_to_one(self):
        result = Campaign(self.small_plan()).run()
        assert sum(result.outcome_distribution().values()) == pytest.approx(1.0)

    def test_progress_callback_is_invoked(self):
        seen = []
        Campaign(self.small_plan()).run(
            progress=lambda done, total, res: seen.append((done, total))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_golden_run_reports_handler_calls_and_is_correct(self):
        campaign = Campaign(self.small_plan(1))
        golden = campaign.golden_run(duration=5.0)
        assert golden.healthy
        assert golden.handler_calls["arch_handle_trap"] > 0
        assert golden.handler_calls["irqchip_handle_irq"] > 0
        assert golden.target_cell_lines > 0

    def test_campaign_result_filters_and_records(self):
        result = Campaign(self.small_plan()).run()
        for outcome in Outcome:
            for entry in result.results_with_outcome(outcome):
                assert entry.outcome is outcome
        records = result.to_records()
        assert len(records) == 3
        assert records[0].spec_name.startswith("fig3-medium")

    def test_campaign_save_and_reload(self, tmp_path):
        result = Campaign(self.small_plan()).run()
        path = tmp_path / "campaign.jsonl"
        count = result.save(str(path))
        assert count == 3
        from repro.core.recording import RecordStore
        assert len(RecordStore(path).load()) == 3
