"""Snapshot/restore of the Jailhouse system under test.

The engine's pooling relies on two properties proven here: a restore brings
the *entire* deployment (board RAM, CPU/GIC/timer state, hypervisor cell
registry, guest kernel state, RNG streams) back to the captured instant, and
an experiment run against a restored SUT produces exactly the outcome a
cold-booted SUT produces.
"""

import pytest

from repro.core.experiment import (
    Experiment,
    ExperimentSpec,
    Scenario,
    park_provoking_spec,
)
from repro.core.faultmodels import SingleBitFlip
from repro.core.plan import paper_figure3_plan
from repro.core.sut import JailhouseSUT, SutConfig
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls
from repro.errors import CampaignError


def result_fingerprint(result):
    """Everything observable about a result except wall-clock time."""
    return (
        result.spec_name, result.outcome, result.rationale, result.injections,
        result.register_class_counts, result.target_cell_lines,
        result.root_cell_lines, result.extras,
        None if result.management is None else vars(result.management),
    )


class TestSnapshotRestore:
    def test_restore_rewinds_clock_cpus_and_logs(self):
        sut = JailhouseSUT(SutConfig(seed=3))
        sut.setup()
        sut.perform_cell_lifecycle()
        sut.run(1.0)
        snapshot = sut.snapshot()
        now = sut.now
        uart_lines = sut.board.uart.output_count()
        trap_calls = sut.hypervisor.handlers.call_count("arch_handle_trap")

        sut.run(2.0)
        assert sut.now > now
        assert sut.board.uart.output_count() > uart_lines

        sut.restore(snapshot)
        assert sut.now == now
        assert sut.board.uart.output_count() == uart_lines
        assert sut.hypervisor.handlers.call_count("arch_handle_trap") == trap_calls
        assert sut.inmate_cell_exists()

    def test_restored_run_replays_identically(self):
        """Same state + same RNG stream => byte-identical continuation."""
        sut = JailhouseSUT(SutConfig(seed=11))
        sut.setup()
        sut.perform_cell_lifecycle()
        sut.run(0.5)
        snapshot = sut.snapshot()
        sut.run(2.0)
        first = (sut.board.uart.output_count(), sut.freertos.tick_count,
                 sut.linux.jiffies, sut.hypervisor.handlers.call_count(
                     "irqchip_handle_irq"))
        sut.restore(snapshot)
        sut.run(2.0)
        second = (sut.board.uart.output_count(), sut.freertos.tick_count,
                  sut.linux.jiffies, sut.hypervisor.handlers.call_count(
                      "irqchip_handle_irq"))
        assert first == second

    def test_restore_drops_cells_created_after_snapshot(self):
        sut = JailhouseSUT(SutConfig(seed=4))
        sut.setup()
        snapshot = sut.snapshot()
        sut.perform_cell_lifecycle()
        assert sut.inmate_cell_exists()
        sut.restore(snapshot)
        assert not sut.inmate_cell_exists()
        # The lifecycle can be replayed cleanly afterwards.
        management = sut.perform_cell_lifecycle()
        assert management.create_succeeded and management.start_succeeded

    def test_reset_for_seed_requires_pooling(self):
        sut = JailhouseSUT(SutConfig(seed=0))
        with pytest.raises(CampaignError):
            sut.reset_for_seed(1)


def spec_with_seed(seed):
    return ExperimentSpec(
        name=f"snap-parity-{seed}",
        target=InjectionTarget.nonroot_cpu_trap(),
        trigger=EveryNCalls(60),
        fault_model=SingleBitFlip(),
        scenario=Scenario.STEADY_STATE,
        duration=5.0,
        seed=seed,
    )


class TestRestoredVsColdBootOutcomes:
    def test_pooled_sut_reproduces_cold_boot_outcomes(self):
        """The issue's parity requirement: restored == cold-booted, exactly."""
        specs = [spec_with_seed(seed) for seed in (0, 1, 2)]
        cold = [Experiment(spec).run() for spec in specs]

        pooled_sut = None

        def pooled_factory(seed):
            nonlocal pooled_sut
            if pooled_sut is None:
                pooled_sut = JailhouseSUT(SutConfig(seed=seed))
                pooled_sut.enable_snapshot_pooling()
            elif pooled_sut.config.seed != seed:
                pooled_sut.reset_for_seed(seed)
            return pooled_sut

        pooled = [Experiment(spec, sut_factory=pooled_factory).run()
                  for spec in specs]
        for cold_result, pooled_result in zip(cold, pooled):
            assert result_fingerprint(cold_result) == result_fingerprint(pooled_result)

        # Re-running an already-booted seed takes the boot-snapshot path.
        again = Experiment(specs[-1], sut_factory=pooled_factory).run()
        assert result_fingerprint(again) == result_fingerprint(cold[-1])

    def test_parity_survives_a_cpu_park(self):
        spec = park_provoking_spec(seed=5, duration=8.0)
        cold = Experiment(spec).run()

        sut = None

        def factory(seed):
            nonlocal sut
            if sut is None:
                sut = JailhouseSUT(SutConfig(seed=seed))
                sut.enable_snapshot_pooling()
            elif sut.config.seed != seed:
                sut.reset_for_seed(seed)
            return sut

        first = Experiment(spec, sut_factory=factory).run()
        # Second run restores over the parked/failed end state.
        second = Experiment(spec, sut_factory=factory).run()
        assert result_fingerprint(first) == result_fingerprint(cold)
        assert result_fingerprint(second) == result_fingerprint(cold)
