"""Tests for fault models, triggers, and injection targets."""

import numpy as np
import pytest

from repro.core.faultmodels import (
    MultiBitBurst,
    MultiRegisterBitFlip,
    RegisterClassBitFlip,
    SingleBitFlip,
    StuckAtFault,
)
from repro.core.targets import InjectionTarget
from repro.core.triggers import (
    BurstTrigger,
    EveryNCalls,
    OneShotAtCall,
    ProbabilisticTrigger,
)
from repro.errors import InjectionError, TargetError
from repro.hw.registers import (
    ARCHITECTURAL_REGISTERS,
    Register,
    RegisterClass,
    TrapContext,
)
from repro.hypervisor.handlers import HANDLER_HVC, HANDLER_IRQCHIP, HANDLER_TRAP


def fresh_context() -> TrapContext:
    return TrapContext(cpu_id=1, registers={reg: 0x1111_0000 for reg in
                                            ARCHITECTURAL_REGISTERS})


class TestSingleBitFlip:
    def test_flips_exactly_one_bit_of_one_register(self):
        rng = np.random.default_rng(0)
        context = fresh_context()
        before = context.copy()
        faults = SingleBitFlip().apply(context, rng)
        assert len(faults) == 1
        fault = faults[0]
        assert fault.value_before ^ fault.value_after == 1 << fault.bit
        assert len(before.diff(context)) == 1

    def test_uses_only_architectural_registers(self):
        rng = np.random.default_rng(1)
        registers = {SingleBitFlip().apply(fresh_context(), rng)[0].register
                     for _ in range(200)}
        assert registers <= set(ARCHITECTURAL_REGISTERS)

    def test_restricted_register_set(self):
        rng = np.random.default_rng(2)
        model = SingleBitFlip(registers=[Register.PC])
        for _ in range(10):
            assert model.apply(fresh_context(), rng)[0].register is Register.PC

    def test_empty_register_set_rejected(self):
        with pytest.raises(InjectionError):
            SingleBitFlip(registers=[])

    def test_is_deterministic_for_a_given_rng_state(self):
        a = SingleBitFlip().apply(fresh_context(), np.random.default_rng(7))
        b = SingleBitFlip().apply(fresh_context(), np.random.default_rng(7))
        assert a == b


class TestMultiRegisterBitFlip:
    def test_corrupts_the_requested_number_of_distinct_registers(self):
        rng = np.random.default_rng(3)
        faults = MultiRegisterBitFlip(count=4).apply(fresh_context(), rng)
        assert len(faults) == 4
        assert len({fault.register for fault in faults}) == 4

    def test_count_validation(self):
        with pytest.raises(InjectionError):
            MultiRegisterBitFlip(count=0)
        with pytest.raises(InjectionError):
            MultiRegisterBitFlip(count=50)

    def test_describes_itself(self):
        assert "multi-register" in MultiRegisterBitFlip().describe()


class TestOtherModels:
    def test_register_class_model_stays_in_class(self):
        rng = np.random.default_rng(4)
        model = RegisterClassBitFlip(RegisterClass.PROGRAM_COUNTER)
        for _ in range(10):
            assert model.apply(fresh_context(), rng)[0].register is Register.PC
        gpr_model = RegisterClassBitFlip(RegisterClass.GENERAL_PURPOSE)
        fault = gpr_model.apply(fresh_context(), rng)[0]
        assert fault.register_class is RegisterClass.GENERAL_PURPOSE

    def test_burst_flips_adjacent_bits_of_one_register(self):
        rng = np.random.default_rng(5)
        faults = MultiBitBurst(burst_length=3).apply(fresh_context(), rng)
        assert len(faults) == 3
        assert len({fault.register for fault in faults}) == 1
        bits = sorted(fault.bit for fault in faults)
        assert bits == list(range(bits[0], bits[0] + 3))

    def test_burst_length_validation(self):
        with pytest.raises(InjectionError):
            MultiBitBurst(burst_length=0)
        with pytest.raises(InjectionError):
            MultiBitBurst(burst_length=64)

    def test_stuck_at_forces_all_zeros_or_ones(self):
        rng = np.random.default_rng(6)
        context = fresh_context()
        fault = StuckAtFault(0).apply(context, rng)[0]
        assert context.read(fault.register) == 0
        fault = StuckAtFault(1).apply(context, rng)[0]
        assert context.read(fault.register) == 0xFFFF_FFFF
        with pytest.raises(InjectionError):
            StuckAtFault(7)

    def test_applied_fault_describe(self):
        rng = np.random.default_rng(8)
        fault = SingleBitFlip().apply(fresh_context(), rng)[0]
        text = fault.describe()
        assert "bit" in text and "->" in text


class TestTriggers:
    def test_every_n_calls_fires_on_multiples(self):
        rng = np.random.default_rng(0)
        trigger = EveryNCalls(100)
        fired = [index for index in range(1, 501)
                 if trigger.should_fire(index, rng)]
        assert fired == [100, 200, 300, 400, 500]

    def test_every_n_calls_with_offset(self):
        rng = np.random.default_rng(0)
        trigger = EveryNCalls(50, offset=10)
        assert not trigger.should_fire(50, rng)
        assert trigger.should_fire(60, rng)

    def test_every_n_calls_validation(self):
        with pytest.raises(InjectionError):
            EveryNCalls(0)
        with pytest.raises(InjectionError):
            EveryNCalls(10, offset=-1)

    def test_probabilistic_trigger_matches_its_rate(self):
        rng = np.random.default_rng(1)
        trigger = ProbabilisticTrigger(0.25)
        fired = sum(trigger.should_fire(i, rng) for i in range(4000))
        assert 800 <= fired <= 1200

    def test_probabilistic_trigger_extremes_and_validation(self):
        rng = np.random.default_rng(2)
        assert not any(ProbabilisticTrigger(0.0).should_fire(i, rng) for i in range(50))
        assert all(ProbabilisticTrigger(1.0).should_fire(i, rng) for i in range(50))
        with pytest.raises(InjectionError):
            ProbabilisticTrigger(1.5)

    def test_one_shot_fires_exactly_once_and_resets(self):
        rng = np.random.default_rng(3)
        trigger = OneShotAtCall(5)
        fired = [index for index in range(1, 20) if trigger.should_fire(index, rng)]
        assert fired == [5]
        trigger.reset()
        assert trigger.should_fire(7, rng)

    def test_burst_trigger_fires_in_bursts(self):
        rng = np.random.default_rng(4)
        trigger = BurstTrigger(10, 3)
        fired = [index for index in range(1, 21) if trigger.should_fire(index, rng)]
        assert fired == [1, 2, 3, 11, 12, 13]
        with pytest.raises(InjectionError):
            BurstTrigger(5, 6)

    def test_describe_strings(self):
        assert "100" in EveryNCalls(100).describe()
        assert "probability" in ProbabilisticTrigger(0.5).describe()


class TestInjectionTarget:
    def test_validation(self):
        with pytest.raises(TargetError):
            InjectionTarget(handlers=())
        with pytest.raises(TargetError):
            InjectionTarget(handlers=("bogus",))
        with pytest.raises(TargetError):
            InjectionTarget(handlers=(HANDLER_TRAP,), cpu_filter=frozenset())

    def test_matching_by_handler_and_cpu(self):
        target = InjectionTarget.nonroot_cpu_trap(cpu_id=1)
        assert target.matches(HANDLER_TRAP, 1)
        assert not target.matches(HANDLER_TRAP, 0)
        assert not target.matches(HANDLER_HVC, 1)

    def test_no_cpu_filter_matches_every_cpu(self):
        target = InjectionTarget.trap_handler()
        assert target.matches(HANDLER_TRAP, 0)
        assert target.matches(HANDLER_TRAP, 5)

    def test_canonical_constructors(self):
        assert InjectionTarget.hvc_handler().handlers == (HANDLER_HVC,)
        assert InjectionTarget.irqchip_handler().handlers == (HANDLER_IRQCHIP,)
        assert set(InjectionTarget.hvc_and_trap(cpus={0}).handlers) == {
            HANDLER_HVC, HANDLER_TRAP,
        }

    def test_describe_mentions_handlers_and_cpus(self):
        text = InjectionTarget.hvc_and_trap(cpus={0}).describe()
        assert "arch_handle_hvc" in text and "cpu{0}" in text
        assert "non-root" in InjectionTarget.nonroot_cpu_trap().describe()
