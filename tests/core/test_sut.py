"""Tests for the Jailhouse system-under-test driver."""

import pytest

from repro.core.faultmodels import SingleBitFlip
from repro.core.injection import FaultInjector
from repro.core.sut import JailhouseSUT, SutConfig
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls
from repro.hypervisor.cell import CellState


def test_setup_boots_the_root_cell_only():
    sut = JailhouseSUT(SutConfig(seed=1))
    sut.setup()
    assert sut.hypervisor.root_cell is not None
    assert sut.inmate_cell_exists() is False
    assert sut.linux.alive
    lines = sut.board.uart.lines("hypervisor")
    assert any("Initializing Jailhouse" in line for line in lines)


def test_perform_cell_lifecycle_creates_loads_and_starts(booted_sut):
    cell = booted_sut.hypervisor.cell_by_name("FreeRTOS")
    assert cell is not None
    assert cell.state is CellState.RUNNING
    assert cell.online_cpus == {1}
    assert booted_sut.freertos.alive
    assert booted_sut.inmate_cell_exists()


def test_run_produces_output_from_both_cells(booted_sut):
    start = booted_sut.now
    booted_sut.run(5.0)
    assert booted_sut.now == pytest.approx(start + 5.0)
    evidence = booted_sut.evidence(start, booted_sut.now)
    assert evidence.availability["FreeRTOS"].available
    assert evidence.availability["BananaPi-Linux"].lines > 0
    assert not evidence.observation.panicked


def test_run_stops_early_on_panic(booted_sut):
    booted_sut.hypervisor.panic("dead")
    start = booted_sut.now
    booted_sut.run(30.0)
    # The loop exits immediately; simulated time barely advances.
    assert booted_sut.now - start < 1.0


def test_destroy_inmate_cell_returns_resources(booted_sut):
    assert booted_sut.destroy_inmate_cell()
    assert not booted_sut.inmate_cell_exists()
    assert booted_sut.hypervisor.root_cell.cpus == {0, 1}


def test_destroy_without_cell_fails(booted_sut):
    assert booted_sut.destroy_inmate_cell()
    assert not booted_sut.destroy_inmate_cell()


def test_evidence_reports_injection_count(booted_sut):
    injector = FaultInjector(
        target=InjectionTarget.nonroot_cpu_trap(),
        trigger=EveryNCalls(1),
        fault_model=SingleBitFlip(),
        seed=9,
    )
    booted_sut.install_injector(injector)
    injector.arm()
    booted_sut.run(1.0)
    evidence = booted_sut.evidence(0.0, booted_sut.now)
    assert evidence.injections == injector.injection_count
    assert evidence.injections > 0


def test_serial_log_is_collected(booted_sut):
    booted_sut.run(2.0)
    log = booted_sut.serial_log()
    assert "FreeRTOS" in log and "hypervisor" in log


def test_teardown_uninstalls_injectors(booted_sut):
    injector = FaultInjector(
        target=InjectionTarget.trap_handler(),
        trigger=EveryNCalls(1),
        fault_model=SingleBitFlip(),
    )
    booted_sut.install_injector(injector)
    booted_sut.teardown()
    assert not booted_sut.injectors
    booted_sut.run(0.5)
    assert injector.total_calls == 0


def test_deterministic_given_the_same_seed():
    def run_once(seed: int):
        sut = JailhouseSUT(SutConfig(seed=seed))
        sut.setup()
        sut.perform_cell_lifecycle()
        sut.run(3.0)
        return (
            sut.board.uart.output_count("FreeRTOS"),
            sut.hypervisor.handlers.stats["arch_handle_trap"].calls,
        )

    assert run_once(42) == run_once(42)
    # A different seed changes the stochastic trap mix.
    assert run_once(42) != run_once(43) or True  # trap counts may coincide; no assert on inequality


class TestSpanTelemetry:
    """SUT span instrumentation: aggregate spans per run(), free when off."""

    def test_active_bus_gets_step_and_dispatch_spans(self, booted_sut):
        from repro.obs.telemetry import Telemetry

        bus = Telemetry()
        events = []
        bus.subscribe(events.append)
        booted_sut.attach_telemetry(bus)
        booted_sut.run(1.0)
        spans = {e.payload["name"]: e.payload for e in events
                 if e.kind == "span"}
        assert set(spans) == {"sut.guest_step", "sut.trap_dispatch"}
        assert spans["sut.guest_step"]["count"] == 50      # 1.0s / 0.02
        assert spans["sut.guest_step"]["elapsed_s"] > 0.0
        assert spans["sut.trap_dispatch"]["count"] > 0

    def test_inactive_bus_emits_nothing(self, booted_sut):
        from repro.obs.telemetry import Telemetry

        bus = Telemetry()                 # no sink, no subscribers: inactive
        assert not bus.active
        booted_sut.attach_telemetry(bus)
        booted_sut.run(1.0)
        assert bus._seq == 0              # emit() never built an event

    def test_instrumented_run_matches_uninstrumented(self):
        from repro.obs.telemetry import Telemetry

        plain = JailhouseSUT(SutConfig(seed=11))
        plain.setup()
        plain.perform_cell_lifecycle()
        plain.run(2.0)

        instrumented = JailhouseSUT(SutConfig(seed=11))
        bus = Telemetry()
        bus.subscribe(lambda event: None)
        instrumented.attach_telemetry(bus)
        instrumented.setup()
        instrumented.perform_cell_lifecycle()
        instrumented.run(2.0)

        assert instrumented.now == plain.now
        assert instrumented.serial_log() == plain.serial_log()
        # The dispatch wrapper is removed after every run.
        assert "_dispatch_guest_event" not in instrumented.__dict__
