"""Config -> plan determinism and catalog/legacy-builder identity parity.

The checkpoint layer keys resumable work on ``ExperimentSpec.identity()``, so
two properties are load-bearing:

* compiling the same :class:`CampaignConfig` twice must yield identical
  identity lists (no hidden randomness in the compile path), and
* the catalog-built paper plans must keep the identities of the pre-refactor
  hand-written builders, so checkpoints recorded before the declarative layer
  still resume.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import (
    CampaignConfig,
    PartRef,
    catalog_config,
    catalog_keys,
    load_campaign_config,
)
from repro.core.experiment import Scenario
from repro.core.plan import (
    IntensityLevel,
    build_intensity_plan,
    paper_figure3_plan,
    paper_high_intensity_nonroot_plan,
    paper_high_intensity_root_plan,
)
from repro.core.targets import InjectionTarget
from repro.engine.checkpoint import Checkpoint
from repro.engine.runner import CampaignEngine
from repro.errors import CampaignConfigError

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def identities(plan):
    return [spec.identity() for spec in plan]


class TestDeterminism:
    def test_grid_config_compiles_identically_twice(self):
        config = catalog_config("fig3", num_tests=5, duration=6.0)
        assert identities(config.compile()) == identities(config.compile())

    def test_random_sampling_is_deterministic_per_sample_seed(self):
        def make(sample_seed):
            return CampaignConfig(
                name="rnd",
                targets=[PartRef("nonroot-trap")],
                triggers=[PartRef("every-n-calls", {"n": 50}, tag="t50"),
                          PartRef("every-n-calls", {"n": 100}, tag="t100")],
                fault_models=[PartRef("single-bit-flip")],
                scenarios=["steady-state", "lifecycle"],
                sampling="random", sample_size=8, sample_seed=sample_seed,
            )
        assert identities(make(7).compile()) == identities(make(7).compile())
        assert identities(make(7).compile()) != identities(make(8).compile())

    def test_toml_file_compiles_identically_twice(self):
        path = EXAMPLES / "campaign_fig3.toml"
        assert identities(load_campaign_config(path).compile()) == \
            identities(load_campaign_config(path).compile())

    def test_toml_and_json_spellings_compile_to_the_same_plan(self, tmp_path):
        data = {
            "campaign": {"name": "x", "tests": 2, "duration": 4.0,
                         "intensity": "medium"},
            "target": {"kind": "nonroot-trap"},
        }
        json_path = tmp_path / "x.json"
        json_path.write_text(json.dumps(data))
        toml_path = tmp_path / "x.toml"
        toml_path.write_text(
            '[campaign]\nname = "x"\ntests = 2\nduration = 4.0\n'
            'intensity = "medium"\n[[target]]\nkind = "nonroot-trap"\n'
        )
        assert identities(load_campaign_config(json_path).compile()) == \
            identities(load_campaign_config(toml_path).compile())


class TestCatalogParity:
    """Catalog plans match the pre-refactor hand-written builders."""

    def test_fig3_matches_the_legacy_builder(self):
        legacy = build_intensity_plan(
            IntensityLevel.MEDIUM, InjectionTarget.nonroot_cpu_trap(),
            num_tests=25, scenario=Scenario.STEADY_STATE, duration=60.0,
            base_seed=0, name="fig3-medium-nonroot-trap",
        )
        assert identities(paper_figure3_plan(num_tests=25)) == identities(legacy)

    def test_high_root_matches_the_legacy_builder(self):
        legacy = build_intensity_plan(
            IntensityLevel.HIGH, InjectionTarget.hvc_and_trap(cpus={0}),
            num_tests=10, scenario=Scenario.REPEATED_LIFECYCLE, duration=20.0,
            base_seed=1000, name="high-root-hvc-trap",
        )
        assert identities(paper_high_intensity_root_plan(num_tests=10)) == \
            identities(legacy)

    def test_high_nonroot_matches_the_legacy_builder(self):
        legacy = build_intensity_plan(
            IntensityLevel.HIGH, InjectionTarget.hvc_and_trap(cpus={1}),
            num_tests=10, scenario=Scenario.LIFECYCLE_UNDER_FAULT,
            duration=20.0, base_seed=2000, name="high-nonroot-hvc-trap",
        )
        assert identities(paper_high_intensity_nonroot_plan(num_tests=10)) == \
            identities(legacy)

    def test_identities_match_the_pre_refactor_hashes(self):
        # Captured from the hand-written builders immediately before the
        # declarative refactor; a change here breaks resume of existing
        # checkpoints and must never happen silently.
        ids = identities(paper_figure3_plan(num_tests=2))
        assert ids == ["9a18208c01d2e1e1", "1fdadd514be3a296"]
        assert identities(paper_high_intensity_root_plan(num_tests=1)) == \
            ["adfca78162d9b771"]
        assert identities(paper_high_intensity_nonroot_plan(num_tests=1)) == \
            ["bd8670e4a398de40"]

    def test_example_fig3_config_matches_the_cli_fig3_plan(self):
        config = load_campaign_config(EXAMPLES / "campaign_fig3.toml")
        # The example declares the CLI's fig3 defaults (40 tests, 60 s).
        assert identities(config.compile()) == \
            identities(paper_figure3_plan(num_tests=40, duration=60.0,
                                          base_seed=0))

    def test_park_and_recover_entry_uses_the_park_scenario(self):
        plan = catalog_config("park-and-recover", num_tests=2).compile()
        assert len(plan) == 2
        assert all(spec.scenario is Scenario.PARK_AND_RECOVER for spec in plan)

    def test_catalog_keys_cover_the_paper_campaigns(self):
        assert {"fig3", "high-root", "high-nonroot",
                "park-and-recover"} <= set(catalog_keys())


class TestCheckpointInterop:
    def test_checkpoint_written_by_fig3_resumes_under_the_config_path(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        plan = paper_figure3_plan(num_tests=2, duration=2.0)
        CampaignEngine(plan, checkpoint_path=str(ck)).run()

        config = load_campaign_config(EXAMPLES / "campaign_fig3.toml")
        config.tests, config.duration = 2, 2.0
        resumed = Checkpoint(ck)
        resumed.load()
        assert resumed.completed_indices(config.compile()) == {0, 1}


class TestSutSelection:
    @pytest.mark.parametrize("key,type_name", [
        ("jailhouse", "JailhouseSUT"),
        ("bao-like", "BaoLikeSUT"),
        ("no-isolation", "NoIsolationSUT"),
    ])
    def test_config_file_sut_resolves_to_the_right_variant(self, tmp_path,
                                                           key, type_name):
        path = tmp_path / "c.toml"
        path.write_text(
            f'[campaign]\nname = "c"\nintensity = "medium"\nsut = "{key}"\n'
            '[[target]]\nkind = "nonroot-trap"\n'
        )
        config = load_campaign_config(path)
        sut = config.sut_factory()(seed=0)
        assert type(sut).__name__ == type_name

    def test_sut_override_beats_the_config_file(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text(
            '[campaign]\nname = "c"\nintensity = "medium"\nsut = "jailhouse"\n'
            '[[target]]\nkind = "nonroot-trap"\n'
        )
        factory = load_campaign_config(path).sut_factory(override="bao-like")
        assert type(factory(seed=0)).__name__ == "BaoLikeSUT"

    def test_engine_accepts_a_registry_key_for_the_sut(self):
        plan = catalog_config("fig3", num_tests=1, duration=2.0).compile()
        result = CampaignEngine(plan, sut_factory="no-isolation").run()
        assert len(result.results) == 1


class TestGridSemantics:
    def test_cross_product_size_and_unique_names(self):
        config = CampaignConfig(
            name="grid",
            targets=[PartRef("trap", tag="t"), PartRef("hvc", tag="h")],
            triggers=[PartRef("every-n-calls", {"n": 10})],
            fault_models=[PartRef("single-bit-flip", tag="s"),
                          PartRef("stuck-at", {"stuck_value": 0}, tag="z")],
            scenarios=["steady-state", "lifecycle"],
            tests=3,
        )
        plan = config.compile()
        assert len(plan) == 2 * 1 * 2 * 2 * 3
        names = [spec.name for spec in plan]
        assert len(set(names)) == len(names)
        # Only varying axes appear in the name; the single trigger does not.
        assert "every-n-calls" not in names[0]
        assert names[0] == "grid-t.s.steady-state-0000"


class TestConfigErrors:
    def test_unknown_part_kind_surfaces_the_registry_suggestion(self):
        config = CampaignConfig(
            name="x", targets=[PartRef("nonroot-trap")],
            triggers=[PartRef("every-n-calls", {"n": 10})],
            fault_models=[PartRef("single-bitflip")],
        )
        with pytest.raises(Exception) as excinfo:
            config.compile()
        assert "single-bit-flip" in str(excinfo.value)

    def test_missing_target_table_is_rejected(self):
        with pytest.raises(CampaignConfigError, match="target"):
            CampaignConfig.from_dict({"campaign": {"name": "x",
                                                   "intensity": "medium"}})

    def test_typoed_campaign_key_gets_a_suggestion(self):
        with pytest.raises(CampaignConfigError, match="base_seed"):
            CampaignConfig.from_dict({
                "campaign": {"name": "x", "intensity": "medium",
                             "base_sed": 3},
                "target": {"kind": "nonroot-trap"},
            })

    def test_random_sampling_requires_a_sample_size(self):
        with pytest.raises(CampaignConfigError, match="sample_size"):
            CampaignConfig.from_dict({
                "campaign": {"name": "x", "intensity": "medium",
                             "sampling": "random"},
                "target": {"kind": "nonroot-trap"},
            })

    def test_explicit_axes_or_intensity_shorthand_is_required(self):
        with pytest.raises(CampaignConfigError, match="intensity"):
            CampaignConfig.from_dict({
                "campaign": {"name": "x"},
                "target": {"kind": "nonroot-trap"},
            })

    def test_duplicate_scenarios_are_rejected_as_a_config_error(self):
        with pytest.raises(CampaignConfigError, match="more than once"):
            CampaignConfig.from_dict({
                "campaign": {"name": "x", "intensity": "medium",
                             "scenario": ["steady-state", "steady-state"]},
                "target": {"kind": "nonroot-trap"},
            })

    def test_alias_spelling_of_a_listed_scenario_counts_as_duplicate(self):
        with pytest.raises(CampaignConfigError, match="more than once"):
            CampaignConfig.from_dict({
                "campaign": {"name": "x", "intensity": "medium",
                             "scenario": ["steady-state", "steady_state"]},
                "target": {"kind": "nonroot-trap"},
            })

    def test_duplicate_axis_labels_are_rejected(self):
        with pytest.raises(CampaignConfigError, match="tag"):
            CampaignConfig.from_dict({
                "campaign": {"name": "x", "intensity": "medium"},
                "target": [{"kind": "trap"}, {"kind": "trap"}],
            })

    def test_unknown_catalog_key_suggests_a_close_match(self):
        with pytest.raises(CampaignConfigError) as excinfo:
            catalog_config("fig33")
        assert "fig3" in str(excinfo.value)

    def test_unsupported_config_format_is_rejected(self, tmp_path):
        path = tmp_path / "c.yaml"
        path.write_text("campaign: {}")
        with pytest.raises(CampaignConfigError, match="format"):
            load_campaign_config(path)

    def test_missing_config_file_is_reported(self, tmp_path):
        with pytest.raises(CampaignConfigError, match="does not exist"):
            load_campaign_config(tmp_path / "nope.toml")


class TestExampleConfigs:
    @pytest.mark.parametrize("name", [
        "campaign_fig3.toml",
        "campaign_handler_grid.toml",
        "campaign_random_sample.json",
    ])
    def test_every_example_config_compiles(self, name):
        plan = load_campaign_config(EXAMPLES / name).compile()
        assert len(plan) > 0
        plan.validate()
