"""Tests for the Banana Pi board model."""

import pytest

from repro.errors import HardwareError
from repro.hw.board import BananaPiBoard, BoardConfig, DRAM_BASE, UART0_IRQ
from repro.hw.cpu import CpuState
from repro.hw.memory import MemoryFlags
from repro.hw.timer import VIRTUAL_TIMER_PPI


def test_default_board_matches_the_paper_testbed():
    board = BananaPiBoard()
    assert board.num_cpus == 2                      # dual-core Cortex-A7
    assert board.dram.size == 1 << 30               # 1 GB of RAM
    assert board.dram.start == DRAM_BASE


def test_invalid_configurations_are_rejected():
    with pytest.raises(HardwareError):
        BananaPiBoard(BoardConfig(num_cpus=0))
    with pytest.raises(HardwareError):
        BananaPiBoard(BoardConfig(dram_size=-1))
    with pytest.raises(HardwareError):
        BananaPiBoard(BoardConfig(timer_period=0))


def test_memory_map_has_no_overlaps_and_expected_regions():
    board = BananaPiBoard()
    names = {region.name for region in board.memory.regions}
    assert {"dram", "uart0", "gic", "pio", "boot-sram"} <= names
    for region in board.memory.regions:
        others = [other for other in board.memory.regions if other is not region]
        assert not any(region.overlaps(other) for other in others)


def test_uart_region_is_io_and_wired_to_the_uart_device():
    board = BananaPiBoard()
    region = board.memory.find_region_by_name("uart0")
    assert region.flags & MemoryFlags.IO
    board.uart.set_mmio_source("test")
    board.memory.write(region.start, ord("a"), size=1)
    board.memory.write(region.start, ord("\n"), size=1)
    assert board.uart.lines("test") == ["a"]


def test_power_on_brings_cpu0_online_only():
    board = BananaPiBoard()
    board.power_on()
    assert board.online_cpus() == (0,)
    assert board.cpu(1).state is CpuState.OFFLINE


def test_timers_raise_interrupts_after_power_on():
    board = BananaPiBoard()
    board.power_on()
    board.advance(0.05)
    assert board.gic.has_pending(0)
    assert board.gic.has_pending(1)
    assert VIRTUAL_TIMER_PPI in board.gic.pending_for(0)


def test_uart_irq_is_enabled_in_the_gic():
    board = BananaPiBoard()
    assert board.gic.is_enabled(UART0_IRQ)


def test_cpu_accessor_validates_id():
    board = BananaPiBoard()
    with pytest.raises(HardwareError):
        board.cpu(5)


def test_parked_cpus_listing():
    board = BananaPiBoard()
    board.power_on()
    board.cpu(0).park("test")
    assert board.parked_cpus() == (0,)
    assert board.online_cpus() == ()


def test_reset_returns_board_to_cold_state():
    board = BananaPiBoard()
    board.power_on()
    board.advance(0.1)
    board.uart.write_line("x", "y")
    board.reset()
    assert board.online_cpus() == ()
    assert board.clock.pending_events() == 0
    assert board.uart.output_count() == 0
    assert not board.gic.has_pending(0)


def test_describe_mentions_cpus_and_memory():
    board = BananaPiBoard()
    text = board.describe()
    assert "Cortex-A7" in text
    assert "1024 MiB" in text
    assert "dram" in text
