"""Tests for the UART, per-CPU timer, and GPIO/LED models."""

import pytest

from repro.errors import DeviceError
from repro.hw.clock import SimulationClock
from repro.hw.gic import Gic
from repro.hw.gpio import GpioController, Led
from repro.hw.timer import GenericTimer, VIRTUAL_TIMER_PPI
from repro.hw.uart import UART_LSR, UART_LSR_THRE, UART_THR, Uart


class TestUart:
    def test_write_line_records_source_and_text(self):
        uart = Uart()
        uart.write_line("FreeRTOS", "hello")
        assert uart.lines("FreeRTOS") == ["hello"]
        assert uart.output_count("FreeRTOS") == 1
        assert uart.output_count() == 1

    def test_lines_filter_by_source(self):
        uart = Uart()
        uart.write_line("a", "1")
        uart.write_line("b", "2")
        assert uart.lines("a") == ["1"]
        assert uart.lines() == ["1", "2"]
        assert uart.sources() == ("a", "b")

    def test_char_interface_flushes_on_newline(self):
        uart = Uart()
        for char in "hi\n":
            uart.write_char("cell", char)
        assert uart.lines("cell") == ["hi"]

    def test_partial_lines_are_kept_per_source(self):
        uart = Uart()
        uart.write_char("a", "x")
        uart.write_char("b", "y")
        uart.write_char("a", "\n")
        assert uart.lines("a") == ["x"]
        assert uart.lines("b") == []

    def test_records_carry_timestamps_from_the_clock(self):
        clock = SimulationClock()
        uart = Uart(clock=lambda: clock.now)
        uart.write_line("a", "t0")
        clock.advance(2.0)
        uart.write_line("a", "t2")
        times = [record.timestamp for record in uart.records]
        assert times == [pytest.approx(0.0), pytest.approx(2.0)]

    def test_records_between_is_half_open(self):
        clock = SimulationClock()
        uart = Uart(clock=lambda: clock.now)
        uart.write_line("a", "first")
        clock.advance(1.0)
        uart.write_line("a", "second")
        records = uart.records_between(0.0, 1.0, "a")
        assert [record.text for record in records] == ["first"]

    def test_silent_since_detects_missing_output(self):
        clock = SimulationClock()
        uart = Uart(clock=lambda: clock.now)
        uart.write_line("cell", "alive")
        clock.advance(5.0)
        assert uart.silent_since(1.0, "cell")
        assert not uart.silent_since(0.0, "cell")
        assert uart.silent_since(0.0, "other")

    def test_mmio_thr_writes_are_attributed_to_the_mmio_source(self):
        uart = Uart()
        uart.set_mmio_source("root")
        for char in b"ok\n":
            uart.mmio_write(UART_THR, char, 1)
        assert uart.lines("root") == ["ok"]

    def test_mmio_lsr_reports_transmitter_empty(self):
        uart = Uart()
        assert uart.mmio_read(UART_LSR, 4) & UART_LSR_THRE

    def test_clear_drops_history(self):
        uart = Uart()
        uart.write_line("a", "x")
        uart.clear()
        assert uart.output_count() == 0
        assert uart.last_output_time() is None

    def test_dump_renders_log_file_format(self):
        uart = Uart()
        uart.write_line("hypervisor", "Initializing")
        dump = uart.dump()
        assert "hypervisor: Initializing" in dump
        assert uart.dump(sources=["other"]) == ""


class TestGenericTimer:
    def test_timer_raises_its_ppi_on_each_period(self):
        clock = SimulationClock()
        gic = Gic(2)
        gic.enable_irq(VIRTUAL_TIMER_PPI)
        timer = GenericTimer(1, clock, gic)
        timer.start(0.01)
        clock.advance(0.05)
        assert timer.fired == 5
        assert gic.pending_for(1) == (VIRTUAL_TIMER_PPI,)

    def test_timer_rejects_non_positive_period(self):
        timer = GenericTimer(0, SimulationClock(), Gic(1))
        with pytest.raises(DeviceError):
            timer.start(0.0)

    def test_stop_prevents_further_ticks(self):
        clock = SimulationClock()
        gic = Gic(1)
        gic.enable_irq(VIRTUAL_TIMER_PPI)
        timer = GenericTimer(0, clock, gic)
        timer.start(0.01)
        clock.advance(0.02)
        timer.stop()
        clock.advance(1.0)
        assert timer.fired == 2
        assert not timer.running
        assert timer.period is None

    def test_restart_replaces_the_period(self):
        clock = SimulationClock()
        timer = GenericTimer(0, clock, Gic(1))
        timer.start(0.01)
        timer.start(0.5)
        clock.advance(1.0)
        assert timer.fired == 2


class TestGpioAndLed:
    def test_controller_needs_pins(self):
        with pytest.raises(DeviceError):
            GpioController(0)

    def test_set_level_records_changes_only(self):
        gpio = GpioController(8)
        gpio.set_level(3, True)
        gpio.set_level(3, True)
        gpio.set_level(3, False)
        assert gpio.toggle_count(3) == 2

    def test_out_of_range_pin_is_rejected(self):
        gpio = GpioController(4)
        with pytest.raises(DeviceError):
            gpio.set_level(9, True)

    def test_toggle_inverts_level(self):
        gpio = GpioController(4)
        assert gpio.toggle(1) is True
        assert gpio.toggle(1) is False
        assert gpio.get_level(1) is False

    def test_last_change_uses_clock(self):
        clock = SimulationClock()
        gpio = GpioController(4, clock=lambda: clock.now)
        clock.advance(1.5)
        gpio.toggle(2)
        assert gpio.last_change(2) == pytest.approx(1.5)
        assert gpio.last_change(3) is None

    def test_led_blink_counter(self):
        gpio = GpioController(32)
        led = Led(gpio, pin=24)
        led.on()
        led.off()
        led.toggle()
        assert led.blink_count == 3
        assert led.lit is True

    def test_clear_history_resets_counters(self):
        gpio = GpioController(4)
        gpio.toggle(0)
        gpio.clear_history()
        assert gpio.toggle_count(0) == 0
