"""Tests for the GIC model."""

import pytest

from repro.errors import InterruptError
from repro.hw.gic import Gic, SPURIOUS_IRQ


@pytest.fixture
def gic() -> Gic:
    gic = Gic(num_cpus=2)
    gic.enable_irq(27, priority=0x20)              # per-CPU timer PPI
    gic.enable_irq(33, priority=0xA0, targets={0})  # UART SPI to CPU 0
    gic.enable_irq(155, priority=0x60, targets={1})  # ivshmem doorbell to CPU 1
    return gic


def test_gic_requires_at_least_one_cpu():
    with pytest.raises(ValueError):
        Gic(0)


def test_disabled_irq_is_not_accepted(gic: Gic):
    gic.disable_irq(33)
    assert not gic.raise_irq(33)
    assert not gic.has_pending(0)


def test_unknown_irq_is_not_accepted(gic: Gic):
    assert not gic.raise_irq(200)


def test_out_of_range_irq_is_rejected(gic: Gic):
    with pytest.raises(InterruptError):
        gic.raise_irq(5000)


def test_spi_is_routed_to_its_target_cpu(gic: Gic):
    assert gic.raise_irq(33)
    assert gic.has_pending(0)
    assert not gic.has_pending(1)


def test_ppi_with_explicit_cpu_goes_to_that_cpu(gic: Gic):
    gic.raise_irq(27, cpu_id=1)
    assert gic.pending_for(1) == (27,)
    assert not gic.has_pending(0)


def test_acknowledge_returns_highest_priority_first(gic: Gic):
    gic.raise_irq(33)
    gic.raise_irq(27, cpu_id=0)
    interface = gic.cpu_interfaces[0]
    first = interface.acknowledge()
    interface.end_of_interrupt(first)
    second = interface.acknowledge()
    interface.end_of_interrupt(second)
    assert (first, second) == (27, 33)   # timer has numerically lower priority


def test_acknowledge_with_nothing_pending_is_spurious(gic: Gic):
    assert gic.cpu_interfaces[0].acknowledge() == SPURIOUS_IRQ


def test_eoi_must_match_active_interrupt(gic: Gic):
    gic.raise_irq(33)
    interface = gic.cpu_interfaces[0]
    irq = interface.acknowledge()
    with pytest.raises(InterruptError):
        interface.end_of_interrupt(irq + 1)
    interface.end_of_interrupt(irq)
    assert interface.eoi_count == 1


def test_duplicate_pending_interrupt_is_collapsed(gic: Gic):
    gic.raise_irq(33)
    gic.raise_irq(33)
    assert gic.pending_for(0) == (33,)


def test_priority_mask_blocks_low_priority_interrupts(gic: Gic):
    gic.raise_irq(33)    # priority 0xA0
    interface = gic.cpu_interfaces[0]
    interface.priority_mask = 0x50
    assert interface.acknowledge() == SPURIOUS_IRQ
    interface.priority_mask = 0xFF
    assert interface.acknowledge() == 33


def test_disabled_cpu_interface_returns_spurious(gic: Gic):
    gic.raise_irq(33)
    interface = gic.cpu_interfaces[0]
    interface.enabled = False
    assert interface.acknowledge() == SPURIOUS_IRQ


def test_sgi_between_cores(gic: Gic):
    gic.send_sgi(1, source_cpu=0, target_cpu=1)
    assert 1 in gic.pending_for(1)


def test_sgi_id_must_be_below_16(gic: Gic):
    with pytest.raises(InterruptError):
        gic.send_sgi(20, source_cpu=0, target_cpu=1)


def test_sgi_target_must_exist(gic: Gic):
    with pytest.raises(InterruptError):
        gic.send_sgi(1, source_cpu=0, target_cpu=7)


def test_retarget_irq_changes_delivery(gic: Gic):
    gic.retarget_irq(33, {1})
    gic.raise_irq(33)
    assert gic.has_pending(1)
    assert not gic.has_pending(0)


def test_retarget_to_invalid_cpu_is_rejected(gic: Gic):
    with pytest.raises(InterruptError):
        gic.retarget_irq(33, {9})


def test_clear_pending_per_cpu_and_global(gic: Gic):
    gic.raise_irq(33)
    gic.raise_irq(155)
    gic.clear_pending(0)
    assert not gic.has_pending(0)
    assert gic.has_pending(1)
    gic.clear_pending()
    assert not gic.has_pending(1)


def test_delivered_interrupts_are_recorded(gic: Gic):
    gic.raise_irq(33)
    interface = gic.cpu_interfaces[0]
    interface.end_of_interrupt(interface.acknowledge())
    assert [entry.irq for entry in gic.delivered] == [33]
