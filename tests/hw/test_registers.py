"""Tests for the ARMv7 register model."""

import pytest

from repro.errors import InvalidRegisterError
from repro.hw.registers import (
    ARCHITECTURAL_REGISTERS,
    GUEST_RETURNABLE_MODES,
    Register,
    RegisterClass,
    RegisterFile,
    TrapContext,
    VALID_CPSR_MODES,
    cpsr_mode,
    cpsr_mode_name,
    flip_bit,
    format_context,
    is_valid_guest_cpsr,
    make_cpsr,
    register_class,
    registers_in_class,
)


class TestFlipBit:
    def test_flip_sets_a_clear_bit(self):
        assert flip_bit(0, 3) == 8

    def test_flip_clears_a_set_bit(self):
        assert flip_bit(8, 3) == 0

    def test_flip_is_involutive(self):
        value = 0xDEADBEEF
        assert flip_bit(flip_bit(value, 17), 17) == value

    def test_flip_keeps_value_within_32_bits(self):
        assert flip_bit(0xFFFF_FFFF, 31) == 0x7FFF_FFFF

    @pytest.mark.parametrize("bit", [-1, 32, 100])
    def test_flip_rejects_out_of_range_bits(self, bit):
        with pytest.raises(ValueError):
            flip_bit(0, bit)


class TestRegisterClasses:
    def test_every_architectural_register_has_a_class(self):
        for register in ARCHITECTURAL_REGISTERS:
            assert isinstance(register_class(register), RegisterClass)

    def test_pc_sp_lr_cpsr_have_dedicated_classes(self):
        assert register_class(Register.PC) is RegisterClass.PROGRAM_COUNTER
        assert register_class(Register.SP) is RegisterClass.STACK_POINTER
        assert register_class(Register.LR) is RegisterClass.LINK_REGISTER
        assert register_class(Register.CPSR) is RegisterClass.STATUS

    def test_r_registers_are_general_purpose(self):
        assert register_class(Register.R0) is RegisterClass.GENERAL_PURPOSE
        assert register_class(Register.R12) is RegisterClass.GENERAL_PURPOSE

    def test_registers_in_class_is_consistent_with_register_class(self):
        for cls in RegisterClass:
            for register in registers_in_class(cls):
                assert register_class(register) is cls

    def test_there_are_seventeen_architectural_registers(self):
        # r0-r12, sp, lr, pc, cpsr: the set the paper's fault model draws from.
        assert len(ARCHITECTURAL_REGISTERS) == 17


class TestCpsr:
    def test_make_cpsr_encodes_mode(self):
        assert cpsr_mode(make_cpsr(0b10011)) == 0b10011

    def test_make_cpsr_rejects_invalid_mode(self):
        with pytest.raises(ValueError):
            make_cpsr(0b00001)

    def test_mode_name_for_valid_modes(self):
        assert cpsr_mode_name(make_cpsr(0b10011)) == "SVC"
        assert cpsr_mode_name(make_cpsr(0b10000)) == "USR"

    def test_mode_name_for_invalid_encoding_is_none(self):
        assert cpsr_mode_name(0b00101) is None

    def test_guest_may_not_return_to_hyp_or_mon(self):
        assert not is_valid_guest_cpsr(make_cpsr(0b11010))  # HYP
        assert not is_valid_guest_cpsr(make_cpsr(0b10110))  # MON

    def test_guest_may_return_to_usr_svc_irq(self):
        for mode in (0b10000, 0b10011, 0b10010):
            assert is_valid_guest_cpsr(make_cpsr(mode))

    def test_invalid_mode_encoding_is_not_returnable(self):
        assert not is_valid_guest_cpsr(0b00011)

    def test_returnable_modes_are_a_subset_of_valid_modes(self):
        assert GUEST_RETURNABLE_MODES < set(VALID_CPSR_MODES)


class TestRegisterFile:
    def test_boot_state_is_svc_mode(self):
        regs = RegisterFile()
        assert cpsr_mode_name(regs.read(Register.CPSR)) == "SVC"

    def test_write_and_read_round_trip(self):
        regs = RegisterFile()
        regs.write(Register.R3, 0x1234)
        assert regs.read(Register.R3) == 0x1234

    def test_write_masks_to_32_bits(self):
        regs = RegisterFile()
        regs.write(Register.R0, 0x1_0000_0001)
        assert regs.read(Register.R0) == 1

    def test_write_rejects_non_integer(self):
        with pytest.raises(InvalidRegisterError):
            RegisterFile().write(Register.R0, "oops")  # type: ignore[arg-type]

    def test_flip_changes_exactly_one_bit(self):
        regs = RegisterFile()
        regs.write(Register.R5, 0b1010)
        regs.flip(Register.R5, 0)
        assert regs.read(Register.R5) == 0b1011

    def test_snapshot_is_a_copy(self):
        regs = RegisterFile()
        snapshot = regs.snapshot()
        regs.write(Register.R1, 99)
        assert snapshot[Register.R1] == 0

    def test_load_bulk_writes(self):
        regs = RegisterFile()
        regs.load({Register.PC: 0x8000, Register.SP: 0x9000})
        assert regs.read(Register.PC) == 0x8000
        assert regs.read(Register.SP) == 0x9000

    def test_reset_restores_boot_state(self):
        regs = RegisterFile()
        regs.write(Register.PC, 0xCAFE)
        regs.reset()
        assert regs.read(Register.PC) == 0
        assert cpsr_mode_name(regs.read(Register.CPSR)) == "SVC"

    def test_equality_compares_values(self):
        a, b = RegisterFile(), RegisterFile()
        assert a == b
        a.write(Register.R7, 7)
        assert a != b


class TestTrapContext:
    def test_context_defaults_all_architectural_registers(self):
        context = TrapContext(cpu_id=0)
        for register in ARCHITECTURAL_REGISTERS:
            assert context.read(register) == 0

    def test_hsr_is_readable_through_register_interface(self):
        context = TrapContext(cpu_id=0, hsr=0x1234)
        assert context.read(Register.HSR) == 0x1234

    def test_write_hsr_through_register_interface(self):
        context = TrapContext(cpu_id=0)
        context.write(Register.HSR, 0x42)
        assert context.hsr == 0x42

    def test_flip_corrupts_the_context(self):
        context = TrapContext(cpu_id=1, registers={Register.PC: 0x1000})
        context.flip(Register.PC, 20)
        assert context.pc == 0x1000 | (1 << 20)

    def test_copy_is_independent(self):
        context = TrapContext(cpu_id=0, registers={Register.R0: 5})
        clone = context.copy()
        clone.write(Register.R0, 6)
        assert context.read(Register.R0) == 5

    def test_diff_reports_changed_registers(self):
        original = TrapContext(cpu_id=0, registers={Register.R1: 1})
        corrupted = original.copy()
        corrupted.flip(Register.R1, 4)
        corrupted.write(Register.HSR, 7)
        changed = {register for register, _, _ in original.diff(corrupted)}
        assert changed == {Register.R1, Register.HSR}

    def test_diff_of_identical_contexts_is_empty(self):
        context = TrapContext(cpu_id=0)
        assert context.diff(context.copy()) == []

    def test_corruptible_registers_match_the_paper_fault_model(self):
        context = TrapContext(cpu_id=0)
        assert context.corruptible_registers() == ARCHITECTURAL_REGISTERS

    def test_format_context_mentions_every_register(self):
        text = format_context(TrapContext(cpu_id=3))
        assert "CPU 3" in text
        assert "pc=0x" in text
        assert "hsr=0x" in text
