"""Tests for the simulation clock."""

import pytest

from repro.hw.clock import SimulationClock


def test_clock_starts_at_zero_by_default():
    assert SimulationClock().now == 0.0


def test_clock_starts_at_given_time():
    assert SimulationClock(start=5.0).now == 5.0


def test_advance_moves_time_forward():
    clock = SimulationClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == pytest.approx(2.0)


def test_advance_rejects_negative_duration():
    with pytest.raises(ValueError):
        SimulationClock().advance(-1.0)


def test_schedule_rejects_negative_delay():
    with pytest.raises(ValueError):
        SimulationClock().schedule(-0.1, lambda now: None)


def test_schedule_rejects_non_positive_period():
    with pytest.raises(ValueError):
        SimulationClock().schedule(0.1, lambda now: None, period=0.0)


def test_one_shot_event_fires_once():
    clock = SimulationClock()
    fired = []
    clock.schedule(1.0, fired.append)
    assert clock.advance(0.5) == 0
    assert clock.advance(1.0) == 1
    assert clock.advance(5.0) == 0
    assert fired == [pytest.approx(1.0)]


def test_periodic_event_fires_repeatedly():
    clock = SimulationClock()
    fired = []
    clock.schedule(0.5, fired.append, period=0.5)
    clock.advance(2.0)
    assert len(fired) == 4
    assert fired == [pytest.approx(t) for t in (0.5, 1.0, 1.5, 2.0)]


def test_events_fire_in_timestamp_order():
    clock = SimulationClock()
    order = []
    clock.schedule(2.0, lambda now: order.append("late"))
    clock.schedule(1.0, lambda now: order.append("early"))
    clock.advance(3.0)
    assert order == ["early", "late"]


def test_cancelled_event_does_not_fire():
    clock = SimulationClock()
    fired = []
    handle = clock.schedule(1.0, fired.append)
    handle.cancel()
    clock.advance(2.0)
    assert fired == []
    assert handle.cancelled


def test_cancelling_periodic_event_stops_rescheduling():
    clock = SimulationClock()
    fired = []
    handle = clock.schedule(0.5, fired.append, period=0.5)
    clock.advance(1.0)
    handle.cancel()
    clock.advance(5.0)
    assert len(fired) == 2


def test_event_scheduled_by_callback_fires_in_same_window():
    clock = SimulationClock()
    fired = []

    def chain(now: float) -> None:
        fired.append(now)
        if len(fired) < 3:
            clock.schedule(0.1, chain)

    clock.schedule(0.1, chain)
    clock.advance(1.0)
    assert len(fired) == 3


def test_pending_events_counts_only_active_events():
    clock = SimulationClock()
    handle = clock.schedule(1.0, lambda now: None)
    clock.schedule(2.0, lambda now: None)
    assert clock.pending_events() == 2
    handle.cancel()
    assert clock.pending_events() == 1


def test_cancel_all_clears_everything():
    clock = SimulationClock()
    fired = []
    clock.schedule(0.5, fired.append, period=0.5)
    clock.schedule(1.0, fired.append)
    clock.cancel_all()
    clock.advance(10.0)
    assert fired == []
    assert clock.pending_events() == 0


def test_time_does_not_move_backwards_when_advancing_zero():
    clock = SimulationClock(start=3.0)
    clock.advance(0.0)
    assert clock.now == 3.0
