"""Tests for the structure-of-arrays batch hardware state.

The lane register file must be indistinguishable from the scalar
:class:`~repro.hw.registers.RegisterFile` under any operation sequence —
the batched lockstep core hands lanes to code written against the scalar
API — and batched memory dispatch must return exactly what a per-access
``memory.read`` loop returns, including for MMIO and permission errors.
"""

import random

import pytest

from repro.errors import InvalidRegisterError, MemoryAccessError
from repro.hw.batch import (
    NUM_REGISTERS,
    REGISTER_ORDER,
    BatchedRegisterFile,
    LaneRegisterFile,
    batched_read,
    pages_touched,
    plan_page_groups,
)
from repro.hw.memory import (
    PAGE_SIZE,
    MemoryFlags,
    MemoryRegion,
    MmioHandler,
    PhysicalMemory,
)
from repro.hw.registers import Register, RegisterFile, make_cpsr


class TestLaneRegisterFileParity:
    """A lane must behave exactly like a scalar RegisterFile."""

    def test_boot_state_matches_scalar(self):
        batch = BatchedRegisterFile(3)
        scalar = RegisterFile()
        for lane_index in range(3):
            assert batch.lane(lane_index).snapshot() == scalar.snapshot()

    def test_randomized_operation_sequences_match_scalar(self):
        rng = random.Random(20220806)
        registers = list(Register)
        for trial in range(20):
            batch = BatchedRegisterFile(2)
            lane = batch.lane(1)
            scalar = RegisterFile()
            for _ in range(200):
                op = rng.randrange(5)
                reg = rng.choice(registers)
                if op == 0:
                    value = rng.randrange(0, 1 << 40)  # exercise masking
                    lane.write(reg, value)
                    scalar.write(reg, value)
                elif op == 1:
                    assert lane.read(reg) == scalar.read(reg)
                elif op == 2:
                    bit = rng.randrange(32)
                    assert lane.flip(reg, bit) == scalar.flip(reg, bit)
                elif op == 3:
                    values = {rng.choice(registers): rng.randrange(1 << 32)
                              for _ in range(4)}
                    lane.load_masked(values)
                    scalar.load_masked(values)
                else:
                    assert lane.snapshot() == scalar.snapshot()
            assert lane.snapshot() == scalar.snapshot()
            assert dict(iter(lane)) == dict(iter(scalar))
            assert lane == scalar

    def test_write_rejects_non_int_values(self):
        lane = BatchedRegisterFile(1).lane(0)
        with pytest.raises(InvalidRegisterError):
            lane.write(Register.R0, "0xff")

    def test_write_rejects_unknown_register(self):
        lane = BatchedRegisterFile(1).lane(0)
        with pytest.raises(InvalidRegisterError):
            lane.write("R99", 1)

    def test_write_masks_to_32_bits(self):
        lane = BatchedRegisterFile(1).lane(0)
        lane.write(Register.R3, 0x1_2345_6789)
        assert lane.read(Register.R3) == 0x2345_6789

    def test_load_context_round_trips_through_scalar(self):
        scalar = RegisterFile()
        scalar.write(Register.PC, 0x8000_0040)
        scalar.write(Register.SP, 0x4000_FF00)
        lane = BatchedRegisterFile(1).lane(0)
        lane.load_context(scalar.snapshot())
        assert lane.snapshot() == scalar.snapshot()

    def test_reset_restores_boot_state(self):
        lane = BatchedRegisterFile(1).lane(0)
        for reg in Register:
            lane.write(reg, 0xDEAD_BEEF)
        lane.reset()
        assert lane.snapshot() == RegisterFile().snapshot()
        assert lane.read(Register.CPSR) == make_cpsr(0b10011)


class TestBatchedRegisterFile:
    def test_rejects_non_positive_lane_count(self):
        with pytest.raises(ValueError):
            BatchedRegisterFile(0)

    def test_lanes_are_isolated(self):
        batch = BatchedRegisterFile(4)
        batch.lane(2).write(Register.R5, 0x55)
        for lane_index in (0, 1, 3):
            assert batch.lane(lane_index).read(Register.R5) == 0

    def test_register_order_covers_every_register_once(self):
        assert NUM_REGISTERS == len(Register)
        assert set(REGISTER_ORDER) == set(Register)

    def test_broadcast_fills_every_lane(self):
        source = RegisterFile()
        source.write(Register.PC, 0x8000)
        source.write(Register.R7, 0x77)
        batch = BatchedRegisterFile(5)
        batch.broadcast(source)
        for lane_index in range(5):
            assert batch.lane(lane_index).snapshot() == source.snapshot()
        assert batch.divergent_lanes() == ()

    def test_capture_and_restore_lane_round_trip(self):
        source = RegisterFile()
        source.write(Register.LR, 0x1234)
        batch = BatchedRegisterFile(2)
        batch.capture_lane(1, source)
        target = RegisterFile()
        batch.restore_lane(1, target)
        assert target.snapshot() == source.snapshot()

    def test_divergent_lanes_names_exactly_the_mutated_lanes(self):
        batch = BatchedRegisterFile(6)
        batch.broadcast(RegisterFile())
        batch.lane(2).write(Register.R0, 1)
        batch.lane(4).flip(Register.CPSR, 9)
        assert batch.divergent_lanes() == (2, 4)

    def test_copy_lane_realigns_a_divergent_lane(self):
        batch = BatchedRegisterFile(3)
        batch.lane(1).write(Register.R1, 0xAB)
        batch.copy_lane(0, 1)
        assert batch.divergent_lanes() == ()

    def test_lane_words_follow_register_order(self):
        batch = BatchedRegisterFile(1)
        batch.lane(0).write(Register.R2, 0x42)
        words = batch.lane_words(0)
        assert words[REGISTER_ORDER.index(Register.R2)] == 0x42

    def test_equality_compares_slabs(self):
        a, b = BatchedRegisterFile(2), BatchedRegisterFile(2)
        assert a == b
        b.lane(0).write(Register.R0, 1)
        assert a != b


def _make_memory():
    memory = PhysicalMemory([
        MemoryRegion("dram", 0x0000_0000, 4 * PAGE_SIZE, MemoryFlags.RW),
        MemoryRegion("rom", 0x0010_0000, PAGE_SIZE, MemoryFlags.READ),
        MemoryRegion("device", 0x0020_0000, PAGE_SIZE,
                     MemoryFlags.RW | MemoryFlags.IO),
        MemoryRegion("writeonly", 0x0030_0000, PAGE_SIZE, MemoryFlags.WRITE),
    ])
    return memory


class _CountingMmio(MmioHandler):
    def __init__(self):
        self.reads = []

    def mmio_read(self, offset, size):
        self.reads.append((offset, size))
        return 0xA5A5_A5A5 & ((1 << (8 * size)) - 1)

    def mmio_write(self, offset, value, size):  # pragma: no cover - unused
        pass


class TestPlanPageGroups:
    def test_groups_same_page_accesses(self):
        groups, fallback = plan_page_groups([
            (0x100, 4), (0x104, 4), (PAGE_SIZE + 8, 2), (0x10, 1),
        ])
        assert fallback == []
        assert sorted(groups) == [0, 1]
        assert [a for _, a, _ in groups[0]] == [0x100, 0x104, 0x10]

    def test_cross_page_and_odd_sizes_fall_back(self):
        groups, fallback = plan_page_groups([
            (PAGE_SIZE - 2, 4),   # spans a page boundary
            (0x200, 8),           # not a fast-path size
            (0x300, 4),
        ])
        assert len(groups[0]) == 1
        assert [(a, s) for _, a, s in fallback] == [(PAGE_SIZE - 2, 4), (0x200, 8)]

    def test_pages_touched_counts_distinct_pages(self):
        assert pages_touched([(0x0, 4), (0x10, 4), (PAGE_SIZE, 4)]) == 2


class TestBatchedRead:
    def test_matches_scalar_reads_on_ram(self):
        memory = _make_memory()
        rng = random.Random(7)
        for address in range(0, 4 * PAGE_SIZE, 16):
            memory.write(address, rng.randrange(1 << 32), 4)
        accesses = [(rng.randrange(0, 4 * PAGE_SIZE - 4), rng.choice((1, 2, 4)))
                    for _ in range(300)]
        expected = [memory.read(address, size) for address, size in accesses]
        assert batched_read(memory, accesses) == expected

    def test_untouched_ram_pages_read_zero(self):
        memory = _make_memory()
        assert batched_read(memory, [(3 * PAGE_SIZE + 4, 4)]) == [0]

    def test_mmio_accesses_go_through_the_handler(self):
        memory = _make_memory()
        handler = _CountingMmio()
        memory.attach_mmio("device", handler)
        results = batched_read(memory, [(0x0020_0000, 4), (0x0020_0004, 2)])
        assert results == [0xA5A5_A5A5, 0xA5A5]
        assert handler.reads == [(0, 4), (4, 2)]

    def test_permission_errors_surface_like_scalar(self):
        memory = _make_memory()
        with pytest.raises(MemoryAccessError):
            batched_read(memory, [(0x0030_0000, 4)])

    def test_unmapped_addresses_surface_like_scalar(self):
        memory = _make_memory()
        with pytest.raises(MemoryAccessError):
            batched_read(memory, [(0x0F00_0000, 4)])

    def test_mixed_batch_preserves_request_order(self):
        memory = _make_memory()
        handler = _CountingMmio()
        memory.attach_mmio("device", handler)
        memory.write(0x40, 0x1111_2222, 4)
        accesses = [
            (0x40, 4),                  # RAM fast path
            (0x0020_0008, 1),           # MMIO
            (PAGE_SIZE - 2, 4),         # cross-page fallback (still RAM)
            (0x40, 2),                  # RAM again, same page as first
        ]
        expected = [memory.read(address, size) for address, size in accesses]
        assert batched_read(memory, accesses) == expected

    def test_lane_register_file_feeds_memory_addresses(self):
        # End-to-end shape the stepper uses: lanes hold addresses, the batch
        # dispatcher serves all lanes' loads in one call.
        memory = _make_memory()
        batch = BatchedRegisterFile(4)
        for lane_index in range(4):
            address = 0x80 + 0x10 * lane_index
            memory.write(address, 0x1000 + lane_index, 4)
            batch.lane(lane_index).write(Register.R0, address)
        accesses = [(batch.lane(i).read(Register.R0), 4) for i in range(4)]
        assert batched_read(memory, accesses) == [0x1000, 0x1001, 0x1002, 0x1003]
