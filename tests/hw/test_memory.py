"""Tests for the physical memory map."""

import pytest

from repro.errors import MemoryAccessError, RegionOverlapError
from repro.hw.memory import (
    AccessType,
    MemoryFlags,
    MemoryRegion,
    MmioHandler,
    PhysicalMemory,
)


def make_memory() -> PhysicalMemory:
    return PhysicalMemory(
        [
            MemoryRegion("ram", 0x1000, 0x4000, MemoryFlags.RWX),
            MemoryRegion("rom", 0x8000, 0x1000, MemoryFlags.READ | MemoryFlags.EXECUTE),
            MemoryRegion("io", 0x10000, 0x100, MemoryFlags.RW | MemoryFlags.IO),
        ]
    )


class TestMemoryRegion:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            MemoryRegion("bad", 0, 0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            MemoryRegion("bad", -4, 16)

    def test_contains_is_end_exclusive(self):
        region = MemoryRegion("r", 0x100, 0x10)
        assert region.contains(0x100)
        assert region.contains(0x10F)
        assert not region.contains(0x110)
        assert not region.contains(0x10C, size=8)

    def test_overlap_detection(self):
        a = MemoryRegion("a", 0x100, 0x100)
        b = MemoryRegion("b", 0x180, 0x100)
        c = MemoryRegion("c", 0x200, 0x100)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_permissions(self):
        region = MemoryRegion("r", 0, 16, MemoryFlags.READ)
        assert region.permits(AccessType.READ)
        assert not region.permits(AccessType.WRITE)
        assert not region.permits(AccessType.EXECUTE)

    def test_describe_contains_name_and_range(self):
        text = MemoryRegion("dram", 0x1000, 0x1000, MemoryFlags.RWX).describe()
        assert "dram" in text
        assert "0x00001000" in text


class TestRegionManagement:
    def test_overlapping_regions_are_rejected(self):
        memory = make_memory()
        with pytest.raises(RegionOverlapError):
            memory.add_region(MemoryRegion("clash", 0x2000, 0x100))

    def test_find_region_by_address(self):
        memory = make_memory()
        assert memory.find_region(0x1000).name == "ram"
        assert memory.find_region(0x9000) is None

    def test_find_region_by_name(self):
        memory = make_memory()
        assert memory.find_region_by_name("rom").start == 0x8000
        assert memory.find_region_by_name("nope") is None

    def test_remove_region_drops_contents(self):
        memory = make_memory()
        memory.write(0x1000, 0xAB, size=1)
        memory.remove_region("ram")
        assert memory.find_region_by_name("ram") is None
        with pytest.raises(MemoryAccessError):
            memory.read(0x1000, 1)

    def test_remove_unknown_region_raises(self):
        with pytest.raises(KeyError):
            make_memory().remove_region("ghost")

    def test_is_mapped_respects_region_boundaries(self):
        memory = make_memory()
        assert memory.is_mapped(0x1000, 4)
        assert not memory.is_mapped(0x4FFE, 4)   # crosses the end of ram
        assert not memory.is_mapped(0x7000, 4)

    def test_describe_map_lists_all_regions(self):
        text = make_memory().describe_map()
        assert "ram" in text and "rom" in text and "io" in text


class TestAccess:
    def test_read_write_round_trip(self):
        memory = make_memory()
        memory.write(0x1234, 0xDEADBEEF)
        assert memory.read(0x1234) == 0xDEADBEEF

    def test_memory_is_zero_initialised(self):
        assert make_memory().read(0x2000) == 0

    def test_byte_level_round_trip(self):
        memory = make_memory()
        memory.write_bytes(0x1100, b"hello")
        assert memory.read_bytes(0x1100, 5) == b"hello"

    def test_write_spanning_pages(self):
        memory = make_memory()
        payload = bytes(range(64))
        memory.write_bytes(0x1FE0, payload)   # crosses the 0x2000 page boundary
        assert memory.read_bytes(0x1FE0, 64) == payload

    def test_unmapped_access_raises(self):
        with pytest.raises(MemoryAccessError):
            make_memory().read(0x9999)

    def test_write_to_read_only_region_raises(self):
        with pytest.raises(MemoryAccessError) as excinfo:
            make_memory().write(0x8000, 1)
        assert "permission" in str(excinfo.value)

    def test_fetch_requires_execute_permission(self):
        memory = make_memory()
        memory.fetch(0x8000)     # rom is executable
        with pytest.raises(MemoryAccessError):
            memory.fetch(0x10000)  # io is not

    def test_error_reports_address_and_kind(self):
        with pytest.raises(MemoryAccessError) as excinfo:
            make_memory().read(0xDEAD0000)
        error = excinfo.value
        assert error.address == 0xDEAD0000
        assert error.kind == "read"

    def test_sparse_storage_allocates_only_touched_pages(self):
        memory = make_memory()
        assert memory.resident_pages() == 0
        memory.write(0x1000, 1)
        memory.write(0x3000, 1)
        assert memory.resident_pages() == 2


class RecordingDevice(MmioHandler):
    def __init__(self) -> None:
        self.writes = []

    def mmio_read(self, offset: int, size: int) -> int:
        return 0x5A

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        self.writes.append((offset, value))


class TestMmio:
    def test_mmio_handler_receives_accesses(self):
        memory = make_memory()
        device = RecordingDevice()
        memory.attach_mmio("io", device)
        memory.write(0x10010, 0x77)
        assert device.writes == [(0x10, 0x77)]
        assert memory.read(0x10000) == 0x5A

    def test_attach_to_non_io_region_is_rejected(self):
        with pytest.raises(ValueError):
            make_memory().attach_mmio("ram", RecordingDevice())

    def test_attach_to_unknown_region_is_rejected(self):
        with pytest.raises(KeyError):
            make_memory().attach_mmio("ghost", RecordingDevice())


class TestRemoveRegionBoundaryPages:
    """remove_region must only evict pages fully owned by the removed region."""

    def test_shared_boundary_page_survives_neighbour_removal(self):
        # Two regions meeting mid-page: removing one must not drop the
        # neighbour's bytes on the shared page.
        memory = PhysicalMemory([
            MemoryRegion("low", 0x0000, 0x1800, MemoryFlags.RW),   # ends mid-page 1
            MemoryRegion("high", 0x1800, 0x1800, MemoryFlags.RW),  # starts mid-page 1
        ])
        memory.write(0x17FC, 0x11111111)    # low's half of the shared page
        memory.write(0x1800, 0x22222222)    # high's half of the shared page
        memory.write(0x2000, 0x33333333)    # page fully owned by high
        memory.remove_region("high")
        # low's data on the shared page is intact...
        assert memory.read(0x17FC) == 0x11111111
        # ...high's slice of the shared page was zeroed, not merely unmapped.
        memory.add_region(MemoryRegion("high2", 0x1800, 0x1800, MemoryFlags.RW))
        assert memory.read(0x1800) == 0
        # The fully-owned page was evicted outright.
        assert memory.read(0x2000) == 0

    def test_unshared_boundary_page_is_dropped(self):
        memory = PhysicalMemory([
            MemoryRegion("only", 0x0800, 0x1000, MemoryFlags.RW),
        ])
        memory.write(0x0800, 0xAB, 1)
        assert memory.resident_pages() == 1
        memory.remove_region("only")
        assert memory.resident_pages() == 0

    def test_fully_aligned_region_pages_are_dropped(self):
        memory = PhysicalMemory([
            MemoryRegion("aligned", 0x0000, 0x2000, MemoryFlags.RW),
        ])
        memory.write(0x0000, 0x1234)
        memory.write(0x1000, 0x5678)
        memory.remove_region("aligned")
        assert memory.resident_pages() == 0


class TestFetchFromMmio:
    """Instruction fetch from a device window is a wild-jump symptom."""

    def test_fetch_from_io_region_raises(self):
        memory = PhysicalMemory([
            MemoryRegion("xio", 0x0, 0x1000,
                         MemoryFlags.RWX | MemoryFlags.IO),
        ])
        with pytest.raises(MemoryAccessError) as excinfo:
            memory.fetch(0x10)
        assert excinfo.value.kind == "execute"
        assert "MMIO" in excinfo.value.reason

    def test_fetch_from_io_region_with_handler_raises(self):
        memory = PhysicalMemory([
            MemoryRegion("xio", 0x0, 0x1000,
                         MemoryFlags.RWX | MemoryFlags.IO),
        ])
        memory.attach_mmio("xio", RecordingDevice())
        with pytest.raises(MemoryAccessError):
            memory.fetch(0x10)
        # Data reads still go through the handler.
        assert memory.read(0x10) == 0x5A

    def test_fetch_without_execute_permission_still_reports_permissions(self):
        memory = make_memory()
        with pytest.raises(MemoryAccessError):
            memory.fetch(0x10000)   # io region is RW (not executable)

    def test_fetch_from_ram_unaffected(self):
        memory = make_memory()
        memory.write(0x1000, 0xDEADBEEF)
        assert memory.fetch(0x1000) == 0xDEADBEEF
