"""Tests for the CPU core model."""

import pytest

from repro.errors import CpuStateError
from repro.hw.cpu import CpuCore, CpuMode, CpuState
from repro.hw.registers import Register, TrapContext


def test_new_cpu_is_offline():
    cpu = CpuCore(0)
    assert cpu.state is CpuState.OFFLINE
    assert not cpu.is_executing


def test_power_on_sets_entry_point_and_cell():
    cpu = CpuCore(1)
    cpu.power_on(entry_point=0x4000_0000, cell_id=2)
    assert cpu.state is CpuState.ONLINE
    assert cpu.registers.read(Register.PC) == 0x4000_0000
    assert cpu.assigned_cell == 2
    assert cpu.mode is CpuMode.SVC


def test_double_power_on_is_rejected():
    cpu = CpuCore(0)
    cpu.power_on()
    with pytest.raises(CpuStateError):
        cpu.power_on()


def test_power_off_clears_assignment():
    cpu = CpuCore(0)
    cpu.power_on(cell_id=1)
    cpu.power_off()
    assert cpu.state is CpuState.OFFLINE
    assert cpu.assigned_cell is None


def test_park_records_reason_and_error_code():
    cpu = CpuCore(1)
    cpu.power_on()
    cpu.park("unhandled trap", timestamp=4.2, error_code=0x24)
    assert cpu.is_parked
    assert not cpu.is_executing
    record = cpu.park_history[-1]
    assert record.reason == "unhandled trap"
    assert record.error_code == 0x24
    assert record.timestamp == pytest.approx(4.2)


def test_fail_marks_cpu_failed():
    cpu = CpuCore(0)
    cpu.power_on()
    cpu.fail("bring-up derailed")
    assert cpu.state is CpuState.FAILED


def test_reset_returns_to_offline_and_clears_registers():
    cpu = CpuCore(0)
    cpu.power_on(entry_point=0x1000, cell_id=3)
    cpu.park("x")
    cpu.reset()
    assert cpu.state is CpuState.OFFLINE
    assert cpu.registers.read(Register.PC) == 0
    assert cpu.assigned_cell is None


def test_enter_trap_snapshots_registers():
    cpu = CpuCore(0)
    cpu.power_on(entry_point=0x2000)
    cpu.registers.write(Register.R0, 0xAA)
    context = cpu.enter_trap("hvc", hsr=0x1234, timestamp=1.0)
    assert context.cpu_id == 0
    assert context.read(Register.R0) == 0xAA
    assert context.read(Register.PC) == 0x2000
    assert context.hsr == 0x1234
    assert cpu.mode is CpuMode.HYP
    assert cpu.trap_entries == 1


def test_enter_trap_requires_online_cpu():
    cpu = CpuCore(0)
    with pytest.raises(CpuStateError):
        cpu.enter_trap("hvc", 0)
    cpu.power_on()
    cpu.park("dead")
    with pytest.raises(CpuStateError):
        cpu.enter_trap("hvc", 0)


def test_exit_trap_restores_possibly_modified_context():
    cpu = CpuCore(0)
    cpu.power_on(entry_point=0x2000)
    context = cpu.enter_trap("hvc", 0)
    context.write(Register.R0, 0xFFFF_FFEA)   # handler wrote a return code
    cpu.exit_trap(context)
    assert cpu.registers.read(Register.R0) == 0xFFFF_FFEA
    assert cpu.mode is CpuMode.SVC


def test_exit_trap_is_a_noop_when_cpu_was_parked_by_the_handler():
    cpu = CpuCore(0)
    cpu.power_on(entry_point=0x2000)
    context = cpu.enter_trap("hvc", 0)
    cpu.park("handler parked us")
    context.write(Register.PC, 0xDEAD)
    cpu.exit_trap(context)
    assert cpu.registers.read(Register.PC) == 0x2000


def test_trap_entry_counter_accumulates():
    cpu = CpuCore(0)
    cpu.power_on()
    for _ in range(5):
        context = cpu.enter_trap("irq", 0)
        cpu.exit_trap(context)
    assert cpu.trap_entries == 5


def test_park_records_are_frozen():
    # snapshot_state() shallow-copies park_history, so records must be
    # immutable or a later mutation would rewrite history inside snapshots.
    cpu = CpuCore(0)
    cpu.power_on()
    cpu.park("unhandled trap", timestamp=1.5, error_code=0x24)
    with pytest.raises(Exception):
        cpu.park_history[0].reason = "rewritten"


def test_snapshot_park_history_survives_later_parks():
    cpu = CpuCore(0)
    cpu.power_on()
    cpu.park("first park", timestamp=1.0, error_code=0x24)
    snapshot = cpu.snapshot_state()
    cpu.state = CpuState.ONLINE
    cpu.park("second park", timestamp=2.0)
    assert len(snapshot["park_history"]) == 1
    assert snapshot["park_history"][0].reason == "first park"
    cpu.restore_state(snapshot)
    assert [record.reason for record in cpu.park_history] == ["first park"]
