"""Dirty-page delta snapshots of :class:`PhysicalMemory`.

Correctness contract: a snapshot must always read back as a full page image
and a restore must always reproduce it exactly, no matter how snapshots and
writes interleave. Efficiency contract: pages untouched between captures are
shared (the same immutable ``bytes`` object) instead of re-copied, and
restores keep the live ``bytearray`` of provably unchanged pages.
"""

import pytest

from repro.errors import MemoryAccessError
from repro.hw.memory import (
    MemoryFlags,
    MemoryRegion,
    PhysicalMemory,
)

BASE = 0x4000_0000


def make_memory() -> PhysicalMemory:
    return PhysicalMemory([
        MemoryRegion("dram", BASE, 1 << 24, MemoryFlags.RWX),
        MemoryRegion("sram", 0x0, 0x4000, MemoryFlags.RW),
    ])


class TestDeltaCorrectness:
    def test_snapshot_restore_round_trip(self):
        memory = make_memory()
        for page in range(8):
            memory.write(BASE + page * 4096, 0x1111 * (page + 1), 4)
        state = memory.snapshot_state()
        for page in range(8):
            memory.write(BASE + page * 4096, 0xDEAD_BEEF, 4)
        memory.restore_state(state)
        for page in range(8):
            assert memory.read(BASE + page * 4096, 4) == 0x1111 * (page + 1)

    def test_interleaved_snapshots_stay_independent(self):
        memory = make_memory()
        memory.write(BASE, 0xAAAA, 4)
        snap_a = memory.snapshot_state()
        memory.write(BASE, 0xBBBB, 4)
        memory.write(BASE + 4096, 0xCCCC, 4)
        snap_b = memory.snapshot_state()
        memory.write(BASE + 8192, 0xDDDD, 4)

        memory.restore_state(snap_a)
        assert memory.read(BASE, 4) == 0xAAAA
        assert memory.read(BASE + 4096, 4) == 0
        assert memory.read(BASE + 8192, 4) == 0

        memory.restore_state(snap_b)
        assert memory.read(BASE, 4) == 0xBBBB
        assert memory.read(BASE + 4096, 4) == 0xCCCC
        assert memory.read(BASE + 8192, 4) == 0

        # Restoring the older snapshot again after the newer one.
        memory.restore_state(snap_a)
        assert memory.read(BASE, 4) == 0xAAAA
        assert memory.read(BASE + 4096, 4) == 0

    def test_write_bytes_marks_pages_dirty(self):
        memory = make_memory()
        memory.write_bytes(BASE + 4090, bytes(range(16)))   # straddles a page
        state = memory.snapshot_state()
        memory.write_bytes(BASE + 4090, b"\xff" * 16)
        memory.restore_state(state)
        assert memory.read_bytes(BASE + 4090, 16) == bytes(range(16))

    def test_pages_created_after_a_snapshot_are_dropped_on_restore(self):
        memory = make_memory()
        memory.write(BASE, 1, 4)
        state = memory.snapshot_state()
        memory.write(BASE + 16 * 4096, 2, 4)
        assert memory.resident_pages() == 2
        memory.restore_state(state)
        assert memory.resident_pages() == 1
        assert memory.read(BASE + 16 * 4096, 4) == 0

    def test_remove_region_interplay(self):
        memory = PhysicalMemory([
            MemoryRegion("left", 0x0, 0x1800, MemoryFlags.RW),
            MemoryRegion("right", 0x1800, 0x800, MemoryFlags.RW),
        ])
        memory.write(0x1000, 0xAB, 1)        # page shared by both regions
        memory.write(0x1C00, 0xCD, 1)
        memory.snapshot_state()
        memory.remove_region("right")        # zeroes its slice of the page
        state = memory.snapshot_state()
        assert state["pages"][1][0xC00] == 0
        assert state["pages"][1][0x000] == 0xAB

    def test_snapshot_is_immune_to_later_writes(self):
        memory = make_memory()
        memory.write(BASE, 0x1234, 4)
        state = memory.snapshot_state()
        memory.write(BASE, 0x9999, 4)
        # The captured image must not alias the live page.
        page = state["pages"][BASE >> 12]
        assert int.from_bytes(page[0:4], "little") == 0x1234


class TestDeltaEfficiency:
    def test_clean_pages_are_shared_between_snapshots(self):
        memory = make_memory()
        for page in range(32):
            memory.write(BASE + page * 4096, page + 1, 4)
        first = memory.snapshot_state()
        memory.write(BASE, 0xFFFF, 4)        # dirty exactly one page
        second = memory.snapshot_state()
        shared = sum(
            1 for index in first["pages"]
            if first["pages"][index] is second["pages"].get(index)
        )
        assert shared == 31                  # all but the dirtied page
        assert first["pages"][BASE >> 12] is not second["pages"][BASE >> 12]

    def test_copy_counters_reflect_the_delta(self):
        memory = make_memory()
        for page in range(16):
            memory.write(BASE + page * 4096, page, 4)
        memory.snapshot_state()
        memory.snapshot_pages_copied = 0
        memory.snapshot_pages_reused = 0
        memory.write(BASE + 4096, 7, 4)
        memory.snapshot_state()
        assert memory.snapshot_pages_copied == 1
        assert memory.snapshot_pages_reused == 15

    def test_restore_keeps_unchanged_live_pages(self):
        memory = make_memory()
        for page in range(8):
            memory.write(BASE + page * 4096, page, 4)
        state = memory.snapshot_state()
        live_before = {index: page for index, page in memory._pages.items()}
        memory.write(BASE, 0xEE, 4)          # dirty page 0 only
        memory.restore_state(state)
        kept = sum(1 for index, page in memory._pages.items()
                   if live_before[index] is page)
        assert kept == 7                     # page 0 was rebuilt, rest kept
        assert memory.read(BASE, 4) == 0

    def test_permissions_still_enforced_after_restore(self):
        memory = make_memory()
        memory.write(BASE, 1, 4)
        state = memory.snapshot_state()
        memory.restore_state(state)
        with pytest.raises(MemoryAccessError):
            memory.fetch(0x100, 4)           # sram is RW, not executable
