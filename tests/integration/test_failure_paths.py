"""Failure-injection tests for the framework itself (error paths).

These tests make sure the orchestration layer degrades cleanly when the
system under test misbehaves: broken bring-up, panics during management,
hypervisor disable races, and experiment misconfiguration.
"""

import pytest

from repro.core.campaign import Campaign
from repro.core.experiment import Experiment, ExperimentSpec, Scenario
from repro.core.faultmodels import SingleBitFlip
from repro.core.outcomes import Outcome
from repro.core.plan import TestPlan, paper_figure3_plan
from repro.core.sut import JailhouseSUT, SutConfig
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls
from repro.errors import CampaignError
from repro.hypervisor.config import freertos_cell_config
from repro.hypervisor.hypercalls import Hypercall, ReturnCode


class BrokenBringUpSUT(JailhouseSUT):
    """A SUT whose non-root cell image points at an invalid entry point."""

    name = "broken-bringup"

    def __init__(self, config=None):
        super().__init__(config or SutConfig(seed=0,
                                             inmate_entry_offset=0x4000_0000))


class TestExperimentErrorPaths:
    def test_steady_state_aborts_if_the_golden_bringup_fails(self):
        spec = ExperimentSpec(
            name="broken", target=InjectionTarget.nonroot_cpu_trap(),
            trigger=EveryNCalls(100), fault_model=SingleBitFlip(),
            duration=2.0, seed=0,
        )
        experiment = Experiment(spec, sut_factory=lambda seed: BrokenBringUpSUT())
        with pytest.raises(CampaignError):
            experiment.run()

    def test_lifecycle_scenario_reports_the_broken_bringup_instead_of_raising(self):
        spec = ExperimentSpec(
            name="broken-lifecycle", target=InjectionTarget.nonroot_cpu_trap(),
            trigger=EveryNCalls(10_000), fault_model=SingleBitFlip(),
            scenario=Scenario.LIFECYCLE_UNDER_FAULT,
            duration=4.0, observe_time=4.0, warmup_time=0.5, seed=0,
        )
        result = Experiment(spec, sut_factory=lambda seed: BrokenBringUpSUT()).run()
        # No faults were injected; the inconsistency comes from the broken
        # image and must be detected as such.
        assert result.injections == 0
        assert result.outcome is Outcome.INCONSISTENT_STATE

    def test_campaign_rejects_an_empty_plan(self):
        with pytest.raises(CampaignError):
            Campaign(TestPlan(name="empty"))


class TestHypervisorRobustnessUnderManagementRaces:
    def test_create_after_disable_fails_with_eio(self, booted_sut):
        hv = booted_sut.hypervisor
        assert booted_sut.destroy_inmate_cell()
        assert hv.issue_hypercall(0, int(Hypercall.DISABLE)).ok
        address = hv.stage_config(freertos_cell_config("Late"))
        outcome = hv.issue_hypercall(0, int(Hypercall.CELL_CREATE), address)
        assert outcome.code == int(ReturnCode.EIO)

    def test_management_after_panic_fails_without_crashing_the_framework(self, booted_sut):
        booted_sut.hypervisor.panic("injected")
        evidence_before = booted_sut.evidence(0.0, booted_sut.now)
        assert evidence_before.observation.panicked
        # The CLI path used by the scenarios keeps returning errors instead of
        # raising, so campaign loops can classify and move on.
        result = booted_sut.cli.cell_destroy("FreeRTOS")
        assert not result.success
        assert not booted_sut.destroy_inmate_cell()

    def test_repeated_lifecycle_survives_mid_test_panic(self):
        spec = ExperimentSpec(
            name="lifecycle-panic", target=InjectionTarget.trap_handler(cpus={0, 1}),
            trigger=EveryNCalls(5), fault_model=SingleBitFlip(),
            scenario=Scenario.REPEATED_LIFECYCLE,
            duration=15.0, observe_time=5.0, warmup_time=0.5,
            seed=321, intensity="high",
        )
        result = Experiment(spec).run()
        # Whatever happens, the experiment terminates with a classified
        # outcome and bookkeeping intact.
        assert isinstance(result.outcome, Outcome)
        assert result.extras["lifecycle_attempts"] >= 1


class TestSeedIndependenceOfThePlan:
    def test_two_campaigns_with_disjoint_seeds_do_not_share_outcomes_object(self):
        plan_a = paper_figure3_plan(num_tests=2, duration=3.0, base_seed=1)
        plan_b = paper_figure3_plan(num_tests=2, duration=3.0, base_seed=900)
        result_a = Campaign(plan_a).run()
        result_b = Campaign(plan_b).run()
        assert len(result_a) == len(result_b) == 2
        assert result_a.results is not result_b.results
