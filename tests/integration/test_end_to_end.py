"""Integration tests: the full stack, end to end.

These tests exercise the complete pipeline the paper describes — golden run,
fault-injection experiments, outcome classification, campaign analytics, and
SEooC evidence — against the real system-under-test (no synthetic records).
They use shorter durations and smaller campaigns than the benchmarks so the
suite stays fast, but the same code paths.
"""

import pytest

from repro.core.analysis import availability_breakdown, outcome_distribution
from repro.core.campaign import Campaign
from repro.core.experiment import Experiment, ExperimentSpec, Scenario, park_provoking_spec
from repro.core.faultmodels import MultiRegisterBitFlip, SingleBitFlip
from repro.core.outcomes import Outcome
from repro.core.plan import (
    IntensityLevel,
    build_intensity_plan,
    paper_high_intensity_nonroot_plan,
)
from repro.core.recording import RecordStore
from repro.core.report import format_figure3
from repro.core.targets import InjectionTarget
from repro.core.triggers import EveryNCalls
from repro.safety.evidence import build_evidence_report
from repro.safety.metrics import compute_isolation_metrics


class TestGoldenRun:
    def test_fault_free_system_behaves_correctly_for_a_long_run(self):
        plan = build_intensity_plan(
            IntensityLevel.MEDIUM, InjectionTarget.nonroot_cpu_trap(),
            num_tests=1, duration=1.0,
        )
        golden = Campaign(plan).golden_run(duration=20.0)
        assert golden.healthy
        assert golden.outcome is Outcome.CORRECT
        # The profiling result that motivated the paper's choice of injection
        # points: all three handlers are exercised by the workload.
        assert golden.handler_calls["arch_handle_trap"] > 100
        assert golden.handler_calls["irqchip_handle_irq"] > 100
        assert golden.handler_calls["arch_handle_hvc"] > 0
        assert golden.target_cell_lines > 20


class TestMediumIntensityCampaign:
    @pytest.fixture(scope="class")
    def campaign_result(self):
        plan = build_intensity_plan(
            IntensityLevel.MEDIUM, InjectionTarget.nonroot_cpu_trap(),
            num_tests=12, duration=30.0, base_seed=7000,
            name="integration-fig3",
        )
        return Campaign(plan).run()

    def test_outcomes_are_dominated_by_correct_and_panic_park(self, campaign_result):
        counts = campaign_result.outcome_counts()
        assert sum(counts.values()) == 12
        # The Figure-3 shape: correct dominates, the main failure mode is the
        # whole-system panic park, everything else is rare.
        assert counts[Outcome.CORRECT] >= counts[Outcome.PANIC_PARK]
        assert counts[Outcome.CORRECT] >= 4
        assert counts[Outcome.INVALID_ARGUMENTS] == 0
        assert counts[Outcome.INCONSISTENT_STATE] == 0

    def test_every_test_injected_faults(self, campaign_result):
        assert all(result.injections > 0 for result in campaign_result.results)

    def test_records_feed_analysis_and_reporting(self, campaign_result, tmp_path):
        records = campaign_result.to_records()
        distribution = outcome_distribution(records)
        assert distribution.total == 12
        breakdown = availability_breakdown(records)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        text = format_figure3(records)
        assert "Figure 3" in text
        store = RecordStore(tmp_path / "fig3.jsonl")
        store.write_all(records)
        assert len(store.load()) == 12

    def test_seooc_evidence_report_builds_from_real_campaign(self, campaign_result):
        records = campaign_result.to_records()
        report = build_evidence_report({"integration-fig3": records})
        text = report.render()
        assert "Assumptions of use" in text
        metrics = compute_isolation_metrics(records)
        assert metrics.total_tests == 12


class TestHighIntensityFindings:
    def test_nonroot_lifecycle_under_fault_reproduces_inconsistent_state(self):
        plan = paper_high_intensity_nonroot_plan(num_tests=6, duration=8.0,
                                                 base_seed=9100)
        result = Campaign(plan).run()
        counts = result.outcome_counts()
        # The characteristic finding: the cell is allocated, reported running,
        # but never produces output.
        assert counts[Outcome.INCONSISTENT_STATE] >= 3
        inconsistent = result.results_with_outcome(Outcome.INCONSISTENT_STATE)
        for entry in inconsistent:
            assert entry.management is not None
            assert entry.management.create_succeeded
            assert entry.management.start_succeeded
            assert entry.target_cell_lines == 0

    def test_corrupted_root_management_calls_are_rejected_not_misallocated(self):
        spec = ExperimentSpec(
            name="root-mgmt", target=InjectionTarget.hvc_handler(cpus={0}),
            trigger=EveryNCalls(2), fault_model=MultiRegisterBitFlip(count=4),
            scenario=Scenario.REPEATED_LIFECYCLE,
            duration=10.0, observe_time=5.0, warmup_time=0.5,
            seed=31337, intensity="high",
        )
        result = Experiment(spec).run()
        extras = result.extras
        assert extras["create_attempts"] >= 1
        # The safety property behind the paper's "expected behaviour": no
        # rejected request ever leaves a cell allocated.
        assert extras["wrongly_allocated"] == 0

    def test_cpu_park_is_isolated_and_recoverable(self):
        result = Experiment(park_provoking_spec(seed=77, duration=40.0)).run()
        assert result.outcome is Outcome.CPU_PARK
        assert result.extras["park_observed"]
        assert result.extras["destroy_returned_resources"]
        assert result.extras["root_cell_alive_after_destroy"]
        assert result.extras["isolation_preserved"]


class TestDeterminism:
    def test_identical_specs_yield_identical_outcomes(self):
        def run():
            spec = ExperimentSpec(
                name="det", target=InjectionTarget.nonroot_cpu_trap(),
                trigger=EveryNCalls(40), fault_model=SingleBitFlip(),
                duration=15.0, seed=555, intensity="medium",
            )
            result = Experiment(spec).run()
            return (result.outcome, result.injections, result.target_cell_lines)

        assert run() == run()
